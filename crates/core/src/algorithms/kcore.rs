//! K-Core decomposition (paper Algorithms 4 and 5).
//!
//! Vertices whose degree drops below `k` are asynchronously removed; each
//! removal notifies the neighbors, which may cascade. K-core needs *precise*
//! event counts, so ghosts are disallowed (Section IV-B) — every decrement
//! must reach the vertex's master.
//!
//! Split-vertex handling: the master partition holds the authoritative
//! counter. When the master kills the vertex, the framework forwards the
//! killing visitor along the replica chain; a replica treats any forwarded
//! visitor as an authoritative kill ([`Role::Replica`]) and fires its local
//! out-edge slice. This is the role-dependent `pre_visit` discussed in
//! DESIGN.md.

use std::cmp::Ordering;
use std::time::Duration;

use havoq_comm::{RankCtx, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

use crate::checkpoint::CheckpointSpec;
use crate::queue::{TraversalConfig, TraversalStats, VisitorQueue};
use crate::visitor::{Role, Visitor, VisitorPush};

/// Per-vertex k-core state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KCoreData {
    /// Still a k-core member?
    pub alive: bool,
    /// Remaining degree budget (master partition only; replicas keep a
    /// stale copy and rely on the forwarded kill).
    pub kcore: u64,
}

impl WireCodec for KCoreData {
    const WIRE_SIZE: usize = 9;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        buf[0] = self.alive as u8;
        self.kcore.encode(&mut buf[1..9]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        KCoreData { alive: buf[0] != 0, kcore: u64::decode(&buf[1..9], ctx) }
    }
}

/// The k-core visitor (Algorithm 4). `k` rides along instead of being a
/// static parameter so several decompositions can run in one world.
#[derive(Clone, Copy, Debug)]
pub struct KCoreVisitor {
    pub vertex: VertexId,
    pub k: u64,
}

impl WireCodec for KCoreVisitor {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.k.encode(&mut buf[8..16]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        KCoreVisitor { vertex: VertexId::decode(&buf[..8], ctx), k: u64::decode(&buf[8..16], ctx) }
    }
}

impl Visitor for KCoreVisitor {
    type Data = KCoreData;
    /// Ghosts cannot be used: every visitor must be counted exactly once
    /// (Section IV-B).
    const GHOSTS_ALLOWED: bool = false;

    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    fn pre_visit(&self, data: &mut KCoreData, role: Role) -> bool {
        match role {
            Role::Master => {
                if data.alive {
                    data.kcore -= 1;
                    if data.kcore < self.k {
                        data.alive = false;
                        return true;
                    }
                }
                false
            }
            // a forwarded visitor means the master already died: kill the
            // replica unconditionally (exactly once) so its local out-edge
            // slice also notifies neighbors
            Role::Replica => {
                if data.alive {
                    data.alive = false;
                    true
                } else {
                    false
                }
            }
            Role::Ghost => unreachable!("k-core declares GHOSTS_ALLOWED = false"),
        }
    }

    fn visit(&self, g: &DistGraph, _data: &mut KCoreData, q: &mut dyn VisitorPush<Self>) {
        // the vertex left the k-core: decrement all local out-neighbors
        g.with_adj(self.vertex, |adj| {
            for &t in adj {
                q.push(KCoreVisitor { vertex: VertexId(t), k: self.k });
            }
        });
    }

    #[inline]
    fn priority(&self, _other: &Self) -> Ordering {
        Ordering::Equal // no algorithm order (Alg. 4); framework uses vertex id
    }

    /// `visit` never touches state (all mutation happens in `pre_visit` on
    /// the coordinator), so this only needs to absorb a stale seed without
    /// regressing: death and the degree budget are both monotone.
    #[inline]
    fn merge(into: &mut KCoreData, update: &KCoreData) {
        into.alive &= update.alive;
        into.kcore = into.kcore.min(update.kcore);
    }
}

/// K-core configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct KCoreConfig {
    pub traversal: TraversalConfig,
    /// When set, every round's traversal checkpoints at quiescence cuts
    /// and can crash/restore under an injected fault plan.
    pub checkpoint: Option<CheckpointSpec>,
}

/// Result of one k-core decomposition (per rank).
#[derive(Clone, Debug)]
pub struct KCoreResult {
    pub k: u64,
    /// Global number of vertices in the k-core.
    pub alive_count: u64,
    pub elapsed: Duration,
    pub stats: TraversalStats,
    /// Final state for this rank's local vertices.
    pub local_state: Vec<KCoreData>,
}

/// Compute the k-core of the (symmetrized) graph (Algorithm 5). Collective.
///
/// ```
/// use havoq_comm::CommWorld;
/// use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
/// use havoq_graph::csr::GraphConfig;
/// use havoq_graph::dist::{DistGraph, PartitionStrategy};
/// use havoq_graph::types::Edge;
///
/// // a triangle with a pendant vertex: the 2-core is the triangle
/// let edges: Vec<Edge> = [(0, 1), (1, 2), (0, 2), (2, 3)]
///     .iter()
///     .flat_map(|&(a, b)| [Edge::new(a, b), Edge::new(b, a)])
///     .collect();
/// let results = CommWorld::run(2, |ctx| {
///     let g = DistGraph::build_replicated(
///         ctx, &edges, PartitionStrategy::EdgeList, GraphConfig::default());
///     kcore(ctx, &g, 2, &KCoreConfig::default())
/// });
/// assert_eq!(results[0].alive_count, 3);
/// ```
pub fn kcore(ctx: &RankCtx, g: &DistGraph, k: u64, cfg: &KCoreConfig) -> KCoreResult {
    let mut cfgq = cfg.traversal;
    cfgq.ghosts = 0;
    let mut q = VisitorQueue::<KCoreVisitor>::new(ctx, g, cfgq);
    // Alg. 5 lines 5-8: alive = true, kcore = degree + 1 (the whole-chain
    // degree, replicated identically on every partition of a split vertex)
    q.init_state(|v, g| KCoreData { alive: true, kcore: g.total_degree(v) + 1 });
    // Alg. 5 lines 9-11: one initial visitor per vertex (its single
    // decrement removes vertices of degree < k)
    for v in g.local_vertices() {
        if g.is_master(v) {
            q.push(KCoreVisitor { vertex: v, k });
        }
    }
    match &cfg.checkpoint {
        Some(spec) => q.do_traversal_checkpointed(ctx, spec),
        None => q.do_traversal(),
    }

    let local_alive =
        g.local_vertices().filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].alive).count()
            as u64;
    let alive_count = ctx.all_reduce_sum(local_alive);
    let stats = q.stats();
    KCoreResult { k, alive_count, elapsed: stats.elapsed, stats, local_state: q.into_state() }
}

/// Full k-core decomposition: the *core number* of every vertex (the
/// largest k whose k-core still contains it).
///
/// Computed incrementally: the k-core is peeled for k = 1, 2, … reusing the
/// surviving state — after a k-run, a surviving master's `kcore` field holds
/// its live degree within the k-core, which seeds the (k+1)-run — until the
/// core empties. One asynchronous traversal per k, exactly the paper's
/// Figure 6 kernel iterated.
#[derive(Clone, Debug)]
pub struct KCoreDecomposition {
    /// Largest non-empty core.
    pub max_core: u64,
    /// Core number per local vertex (masters authoritative).
    pub core_numbers: Vec<u64>,
    pub elapsed: Duration,
    /// Total visitors executed across all peels (this rank).
    pub visitors_executed: u64,
}

/// Compute every vertex's core number. Collective.
pub fn kcore_decomposition(ctx: &RankCtx, g: &DistGraph, cfg: &KCoreConfig) -> KCoreDecomposition {
    let mut cfgq = cfg.traversal;
    cfgq.ghosts = 0;
    let nv = g.num_local_vertices();
    let mut core_numbers = vec![0u64; nv];
    // live state carried between peels
    let mut carry: Vec<KCoreData> =
        g.local_vertices().map(|v| KCoreData { alive: true, kcore: g.total_degree(v) }).collect();
    let mut elapsed = Duration::ZERO;
    let mut visitors_executed = 0u64;
    let mut k = 0u64;
    loop {
        k += 1;
        let mut q = VisitorQueue::<KCoreVisitor>::new(ctx, g, cfgq);
        // live degree + 1, so the initial visitor's decrement lands on the
        // live degree (Alg. 5's degree(v) + 1 generalized to the subgraph)
        q.init_state(|v, g| {
            let d = &carry[g.local_index(v)];
            KCoreData { alive: d.alive, kcore: d.kcore + 1 }
        });
        for v in g.local_vertices() {
            if g.is_master(v) && carry[g.local_index(v)].alive {
                q.push(KCoreVisitor { vertex: v, k });
            }
        }
        match &cfg.checkpoint {
            Some(spec) => q.do_traversal_checkpointed(ctx, spec),
            None => q.do_traversal(),
        }
        let stats = q.stats();
        elapsed += stats.elapsed;
        visitors_executed += stats.visitors_executed;

        let state = q.into_state();
        let mut local_alive = 0u64;
        for (li, d) in state.iter().enumerate() {
            if d.alive {
                core_numbers[li] = k;
                if g.is_master(g.vertex_at(li)) {
                    local_alive += 1;
                }
            }
        }
        carry = state;
        if ctx.all_reduce_sum(local_alive) == 0 {
            break;
        }
    }
    KCoreDecomposition { max_core: k - 1, core_numbers, elapsed, visitors_executed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;
    use havoq_graph::types::Edge;

    /// Serial peeling reference: returns the alive set for core `k`.
    fn reference_kcore(n: u64, edges: &[Edge], k: u64) -> Vec<bool> {
        let mut adj = vec![Vec::new(); n as usize];
        for e in edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        for a in adj.iter_mut() {
            a.sort_unstable();
            a.dedup();
        }
        let mut deg: Vec<u64> = adj.iter().map(|a| a.len() as u64).collect();
        let mut alive = vec![true; n as usize];
        let mut stack: Vec<u64> = (0..n).filter(|&v| deg[v as usize] < k).collect();
        for &v in &stack {
            alive[v as usize] = false;
        }
        while let Some(v) = stack.pop() {
            for &t in &adj[v as usize] {
                if alive[t as usize] {
                    deg[t as usize] -= 1;
                    if deg[t as usize] < k {
                        alive[t as usize] = false;
                        stack.push(t);
                    }
                }
            }
        }
        alive
    }

    fn distributed_alive(p: usize, n: u64, edges: &[Edge], k: u64) -> Vec<bool> {
        let pieces = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            let r = kcore(ctx, &g, k, &KCoreConfig::default());
            g.local_vertices()
                .filter(|&v| g.is_master(v))
                .map(|v| (v.0, r.local_state[g.local_index(v)].alive))
                .collect::<Vec<_>>()
        });
        let mut alive = vec![false; n as usize];
        for (v, a) in pieces.into_iter().flatten() {
            alive[v as usize] = a;
        }
        alive
    }

    #[test]
    fn matches_reference_on_rmat() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(11);
        let n = gen.num_vertices();
        for k in [2u64, 4, 8, 16] {
            let want = reference_kcore(n, &edges, k);
            for p in [1usize, 4] {
                let got = distributed_alive(p, n, &edges, k);
                assert_eq!(got, want, "k={k} p={p}");
            }
        }
    }

    #[test]
    fn cascade_is_followed() {
        // path graph 0-1-2-3-4: 2-core is empty (cascading removal)
        let mut edges = Vec::new();
        for v in 0..4u64 {
            edges.push(Edge::new(v, v + 1));
            edges.push(Edge::new(v + 1, v));
        }
        let out = CommWorld::run(3, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            kcore(ctx, &g, 2, &KCoreConfig::default()).alive_count
        });
        assert_eq!(out[0], 0, "a path collapses entirely under k=2");
    }

    #[test]
    fn clique_survives_its_core() {
        // K5 plus a pendant: 4-core = the clique, pendant dies
        let mut edges = Vec::new();
        for a in 0..5u64 {
            for b in 0..5u64 {
                if a != b {
                    edges.push(Edge::new(a, b));
                }
            }
        }
        edges.push(Edge::new(0, 5));
        edges.push(Edge::new(5, 0));
        for p in [1usize, 2, 4] {
            let alive = distributed_alive(p, 6, &edges, 4);
            assert_eq!(alive, vec![true, true, true, true, true, false], "p={p}");
        }
    }

    /// Serial core-number reference (textbook peeling).
    fn reference_core_numbers(n: u64, edges: &[Edge]) -> Vec<u64> {
        let mut adj = vec![Vec::new(); n as usize];
        for e in edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        for a in adj.iter_mut() {
            a.sort_unstable();
            a.dedup();
        }
        let mut deg: Vec<u64> = adj.iter().map(|a| a.len() as u64).collect();
        let mut core = vec![0u64; n as usize];
        let mut removed = vec![false; n as usize];
        for k in 1..=n {
            let mut stack: Vec<u64> =
                (0..n).filter(|&v| !removed[v as usize] && deg[v as usize] < k).collect();
            if stack.len() == n as usize - removed.iter().filter(|&&r| r).count() {
                // everything below k: previous assignment stands
            }
            for &v in &stack {
                removed[v as usize] = true;
            }
            while let Some(v) = stack.pop() {
                for &t in &adj[v as usize] {
                    if !removed[t as usize] {
                        deg[t as usize] -= 1;
                        if deg[t as usize] < k {
                            removed[t as usize] = true;
                            stack.push(t);
                        }
                    }
                }
            }
            let mut any = false;
            for v in 0..n as usize {
                if !removed[v] {
                    core[v] = k;
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        core
    }

    #[test]
    fn decomposition_matches_reference() {
        let gen = RmatGenerator::graph500(7);
        let edges = gen.symmetric_edges(21);
        let n = gen.num_vertices();
        let want = reference_core_numbers(n, &edges);
        for p in [1usize, 4] {
            let pieces = CommWorld::run(p, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default().with_num_vertices(n),
                );
                let d = kcore_decomposition(ctx, &g, &KCoreConfig::default());
                g.local_vertices()
                    .filter(|&v| g.is_master(v))
                    .map(|v| (v.0, d.core_numbers[g.local_index(v)]))
                    .collect::<Vec<_>>()
            });
            let mut got = vec![0u64; n as usize];
            for (v, c) in pieces.into_iter().flatten() {
                got[v as usize] = c;
            }
            assert_eq!(got, want, "p={p}");
        }
    }

    #[test]
    fn decomposition_max_core_of_clique() {
        // K6: every vertex has core number 5
        let mut edges = Vec::new();
        for a in 0..6u64 {
            for b in 0..6u64 {
                if a != b {
                    edges.push(Edge::new(a, b));
                }
            }
        }
        let out = CommWorld::run(3, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let d = kcore_decomposition(ctx, &g, &KCoreConfig::default());
            let all_five = g
                .local_vertices()
                .filter(|&v| g.is_master(v))
                .all(|v| d.core_numbers[g.local_index(v)] == 5);
            (d.max_core, all_five)
        });
        for (max_core, all_five) in out {
            assert_eq!(max_core, 5);
            assert!(all_five);
        }
    }

    #[test]
    fn k_zero_keeps_everything() {
        let gen = RmatGenerator::graph500(6);
        let edges = gen.symmetric_edges(3);
        let out = CommWorld::run(2, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            kcore(ctx, &g, 0, &KCoreConfig::default()).alive_count
        });
        assert_eq!(out[0], 64);
    }

    #[test]
    fn huge_k_removes_everything() {
        let gen = RmatGenerator::graph500(6);
        let edges = gen.symmetric_edges(3);
        let out = CommWorld::run(2, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            kcore(ctx, &g, 1_000_000, &KCoreConfig::default()).alive_count
        });
        assert_eq!(out[0], 0);
    }
}
