//! The "parallel rounds" analysis framework of Section VI-D.
//!
//! The paper bounds each algorithm by the number of idealized synchronized
//! rounds: `p` processors share one visitor queue; each round executes at
//! most one visitor per processor and at most one visitor per *vertex*
//! (exclusive vertex access); newly created visitors appear at the end of
//! the round. This module implements that executor for BFS so the bounds —
//! `Θ(D + |E|/p + d_in_max)` without ghosts, `Θ(D + |E|/p + p)` with them —
//! can be checked empirically (the `analysis_rounds` experiment binary).
//!
//! The model is sequential and centralized by design: it is an *analysis*
//! tool, not the distributed implementation.

use havoq_graph::types::Edge;
use havoq_util::FxHashMap;

/// Result of one round-model execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundModelResult {
    /// Synchronized parallel rounds until the queue drained.
    pub rounds: u64,
    /// Total visitors executed.
    pub visitors: u64,
    /// Visitors suppressed by the modeled ghost filter.
    pub ghost_filtered: u64,
}

/// Round-synchronous BFS model over an in-memory graph.
///
/// `processors` is the paper's `p`. When `ghosts` is true, each of the `p`
/// model partitions keeps ghost state for every vertex, so at most one
/// improving visitor per (partition, vertex) enters the queue — the
/// idealized best case of Section IV-B that turns the `d_in_max` term
/// into `p`.
pub fn bfs_rounds(
    num_vertices: u64,
    edges: &[Edge],
    processors: usize,
    source: u64,
    ghosts: bool,
) -> RoundModelResult {
    assert!(processors > 0);
    let n = num_vertices as usize;
    let mut adj = vec![Vec::new(); n];
    for e in edges {
        if !e.is_self_loop() {
            adj[e.src as usize].push(e.dst);
        }
    }
    let mut level = vec![u64::MAX; n];
    // queue of (vertex, length); the model's single shared queue
    let mut queue: Vec<(u64, u64)> = vec![(source, 0)];
    // ghost state: per (partition, vertex) best length seen, modeling a
    // fully provisioned ghost table on each partition
    let mut ghost_best: FxHashMap<(usize, u64), u64> = FxHashMap::default();
    let partition_of = |v: u64| (v % processors as u64) as usize;

    let mut rounds = 0u64;
    let mut visitors = 0u64;
    let mut ghost_filtered = 0u64;

    while !queue.is_empty() {
        rounds += 1;
        // select up to `processors` visitors with pairwise-distinct vertices
        let mut selected: Vec<(u64, u64)> = Vec::with_capacity(processors);
        let mut rest: Vec<(u64, u64)> = Vec::with_capacity(queue.len());
        let mut busy: FxHashMap<u64, ()> = FxHashMap::default();
        for (v, l) in queue.drain(..) {
            if selected.len() < processors && !busy.contains_key(&v) {
                busy.insert(v, ());
                selected.push((v, l));
            } else {
                rest.push((v, l));
            }
        }
        // execute: pre_visit + expansion; new visitors land after the round
        let mut created: Vec<(u64, u64)> = Vec::new();
        for (v, l) in selected {
            visitors += 1;
            if l < level[v as usize] {
                level[v as usize] = l;
                let origin_part = partition_of(v);
                for &t in &adj[v as usize] {
                    let nl = l + 1;
                    if ghosts {
                        // the origin partition's local ghost filters the push
                        let key = (origin_part, t);
                        let best = ghost_best.entry(key).or_insert(u64::MAX);
                        if nl < *best {
                            *best = nl;
                            created.push((t, nl));
                        } else {
                            ghost_filtered += 1;
                        }
                    } else {
                        created.push((t, nl));
                    }
                }
            }
        }
        queue = rest;
        queue.extend(created);
    }
    RoundModelResult { rounds, visitors, ghost_filtered }
}

/// The paper's no-ghost BFS round bound `D + |E|/p + d_in_max` evaluated
/// for a concrete graph (as an additive expression; constants are absorbed
/// by callers comparing shapes).
pub fn bfs_bound_no_ghosts(diameter: u64, edges: u64, processors: usize, d_in_max: u64) -> u64 {
    diameter + edges / processors as u64 + d_in_max
}

/// The with-ghosts bound `D + |E|/p + p`.
pub fn bfs_bound_ghosts(diameter: u64, edges: u64, processors: usize) -> u64 {
    diameter + edges / processors as u64 + processors as u64
}

/// Round-synchronous k-core model (Section VI-D2): same executor rules as
/// BFS — one visitor per processor and per vertex per round — over the
/// decrement-cascade semantics of Algorithm 4. K-core cannot use ghosts,
/// so its bound keeps the `d_in_max` term: `Θ(D + |E|/p + d_in_max)`.
pub fn kcore_rounds(
    num_vertices: u64,
    edges: &[Edge],
    processors: usize,
    k: u64,
) -> RoundModelResult {
    assert!(processors > 0);
    let n = num_vertices as usize;
    let mut adj = vec![Vec::new(); n];
    for e in edges {
        if !e.is_self_loop() {
            adj[e.src as usize].push(e.dst);
        }
    }
    for a in adj.iter_mut() {
        a.sort_unstable();
        a.dedup();
    }
    let mut alive = vec![true; n];
    // kcore counter = degree + 1 (Alg. 5)
    let mut counter: Vec<u64> = adj.iter().map(|a| a.len() as u64 + 1).collect();
    // one initial visitor per vertex
    let mut queue: Vec<u64> = (0..num_vertices).collect();
    let mut rounds = 0u64;
    let mut visitors = 0u64;
    while !queue.is_empty() {
        rounds += 1;
        let mut selected: Vec<u64> = Vec::with_capacity(processors);
        let mut rest: Vec<u64> = Vec::with_capacity(queue.len());
        let mut busy: FxHashMap<u64, ()> = FxHashMap::default();
        for v in queue.drain(..) {
            if selected.len() < processors && !busy.contains_key(&v) {
                busy.insert(v, ());
                selected.push(v);
            } else {
                rest.push(v);
            }
        }
        let mut created: Vec<u64> = Vec::new();
        for v in selected {
            visitors += 1;
            if alive[v as usize] {
                counter[v as usize] -= 1;
                if counter[v as usize] < k {
                    alive[v as usize] = false;
                    created.extend(adj[v as usize].iter().copied());
                }
            }
        }
        queue = rest;
        queue.extend(created);
    }
    RoundModelResult { rounds, visitors, ghost_filtered: 0 }
}

/// Round-synchronous triangle-count model (Section VI-D3): first-visit,
/// length-2, and closing duties under the same executor rules. Bound:
/// `O(|E| * d_out_max / p + d_in_max)`.
pub fn triangle_rounds(num_vertices: u64, edges: &[Edge], processors: usize) -> RoundModelResult {
    assert!(processors > 0);
    let n = num_vertices as usize;
    let mut adj = vec![Vec::new(); n];
    for e in edges {
        if !e.is_self_loop() {
            adj[e.src as usize].push(e.dst);
        }
    }
    for a in adj.iter_mut() {
        a.sort_unstable();
        a.dedup();
    }
    const NONE: u64 = u64::MAX;
    // visitor = (vertex, second, third), Alg. 6
    let mut queue: Vec<(u64, u64, u64)> = (0..num_vertices).map(|v| (v, NONE, NONE)).collect();
    let mut rounds = 0u64;
    let mut visitors = 0u64;
    let mut triangles = 0u64;
    while !queue.is_empty() {
        rounds += 1;
        let mut selected = Vec::with_capacity(processors);
        let mut rest = Vec::with_capacity(queue.len());
        let mut busy: FxHashMap<u64, ()> = FxHashMap::default();
        for vis in queue.drain(..) {
            if selected.len() < processors && !busy.contains_key(&vis.0) {
                busy.insert(vis.0, ());
                selected.push(vis);
            } else {
                rest.push(vis);
            }
        }
        let mut created = Vec::new();
        for (v, second, third) in selected {
            visitors += 1;
            if second == NONE {
                for &t in &adj[v as usize] {
                    if t > v {
                        created.push((t, v, NONE));
                    }
                }
            } else if third == NONE {
                for &t in &adj[v as usize] {
                    if t > v {
                        created.push((t, v, second));
                    }
                }
            } else if adj[v as usize].binary_search(&third).is_ok() {
                triangles += 1;
            }
        }
        queue = rest;
        queue.extend(created);
    }
    // reuse ghost_filtered to carry the triangle count out of the model
    RoundModelResult { rounds, visitors, ghost_filtered: triangles }
}

/// The k-core / triangle `d_in`-bearing bound shapes of Section VI-D.
pub fn kcore_bound(diameter: u64, edges: u64, processors: usize, d_in_max: u64) -> u64 {
    diameter + edges / processors as u64 + d_in_max
}

pub fn triangle_bound(edges: u64, d_out_max: u64, processors: usize, d_in_max: u64) -> u64 {
    edges * d_out_max / processors as u64 + d_in_max
}

#[cfg(test)]
mod tests {
    use super::*;
    use havoq_graph::gen::rmat::RmatGenerator;

    fn ring(n: u64) -> Vec<Edge> {
        (0..n).flat_map(|v| [Edge::new(v, (v + 1) % n), Edge::new((v + 1) % n, v)]).collect()
    }

    fn star(n: u64) -> Vec<Edge> {
        (1..n).flat_map(|v| [Edge::new(v, 0), Edge::new(0, v)]).collect()
    }

    #[test]
    fn ring_rounds_track_diameter() {
        // ring of 64: diameter 32; with plenty of processors rounds ~ D
        let n = 64;
        let r = bfs_rounds(n, &ring(n), 64, 0, false);
        assert!(r.rounds >= 32, "at least the diameter: {}", r.rounds);
        assert!(r.rounds <= 40, "close to the diameter: {}", r.rounds);
    }

    #[test]
    fn serial_rounds_track_edge_count() {
        // p = 1: rounds ~ number of visitors ~ |E|
        let n = 64;
        let edges = ring(n);
        let r = bfs_rounds(n, &edges, 1, 0, false);
        assert!(r.rounds >= n, "serial BFS needs >= V rounds: {}", r.rounds);
        assert_eq!(r.rounds, r.visitors, "p=1 executes one visitor per round");
    }

    #[test]
    fn hub_in_degree_dominates_without_ghosts() {
        // star: source is a leaf; the hub receives d_in visitors, one
        // executable per round -> rounds ~ d_in
        let n = 257;
        let edges = star(n);
        let r = bfs_rounds(n, &edges, 1024, 1, false);
        assert!(r.rounds >= 250, "hub serialization: {} rounds", r.rounds);
    }

    #[test]
    fn ghosts_remove_the_hub_term() {
        let n = 257;
        let edges = star(n);
        let no_g = bfs_rounds(n, &edges, 1024, 1, false);
        let with_g = bfs_rounds(n, &edges, 8, 1, true);
        assert!(
            with_g.rounds * 4 < no_g.rounds,
            "ghosts must collapse the d_in term: {} vs {}",
            with_g.rounds,
            no_g.rounds
        );
        assert!(with_g.ghost_filtered > 0);
    }

    #[test]
    fn levels_are_still_correct_with_ghosts() {
        // ghosts are a filter, not a semantic change: visitor counts differ
        // but reachability/rounds remain plausible on a scale-free graph
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(3);
        let a = bfs_rounds(gen.num_vertices(), &edges, 16, 0, false);
        let b = bfs_rounds(gen.num_vertices(), &edges, 16, 0, true);
        assert!(b.visitors <= a.visitors, "filtering cannot add work");
        assert!(b.rounds <= a.rounds + 5, "{} vs {}", b.rounds, a.rounds);
    }

    #[test]
    fn rounds_respect_paper_bound_shape() {
        let gen = RmatGenerator::graph500(9);
        let edges = gen.symmetric_edges(77);
        let n = gen.num_vertices();
        for p in [4usize, 16, 64] {
            let r = bfs_rounds(n, &edges, p, 0, false);
            // measured diameter via the model itself (levels <= rounds)
            let bound = bfs_bound_no_ghosts(64, edges.len() as u64, p, n);
            assert!(r.rounds <= 4 * bound, "p={p}: rounds {} far above bound {bound}", r.rounds);
        }
    }

    #[test]
    fn kcore_model_agrees_with_peeling() {
        // path 0-1-2-3-4 under k=2 collapses entirely; visitors must cover
        // the initial wave plus the cascade
        let mut edges = Vec::new();
        for v in 0..4u64 {
            edges.push(Edge::new(v, v + 1));
            edges.push(Edge::new(v + 1, v));
        }
        let r = kcore_rounds(5, &edges, 4, 2);
        assert!(r.visitors >= 5, "at least the initial visitors: {r:?}");
        // serial: rounds ~ visitors
        let serial = kcore_rounds(5, &edges, 1, 2);
        assert_eq!(serial.rounds, serial.visitors);
    }

    #[test]
    fn kcore_hub_term_persists_without_ghosts() {
        // star graph, k=2: every leaf dies, each sends a decrement to the
        // hub; the hub can absorb only one per round -> rounds >= d_in
        let n = 257;
        let edges = star(n);
        let r = kcore_rounds(n, &edges, 4096, 2);
        assert!(
            r.rounds >= n - 2,
            "k-core cannot use ghosts; hub serialization expected: {} rounds",
            r.rounds
        );
    }

    #[test]
    fn triangle_model_counts_correctly() {
        // K5 has 10 triangles
        let mut edges = Vec::new();
        for a in 0..5u64 {
            for b in 0..5u64 {
                if a != b {
                    edges.push(Edge::new(a, b));
                }
            }
        }
        let r = triangle_rounds(5, &edges, 8);
        assert_eq!(r.ghost_filtered, 10, "model must count K5's triangles");
    }

    #[test]
    fn triangle_rounds_scale_with_max_degree() {
        // same size, different hub mass: hub-heavy graphs take more rounds
        let gen_hub = havoq_graph::gen::pa::PaGenerator::new(512, 4);
        let hub_edges = gen_hub.symmetric_edges(3);
        let gen_flat = havoq_graph::gen::smallworld::SmallWorldGenerator::new(512, 8);
        let flat_edges = gen_flat.symmetric_edges(3);
        let hub = triangle_rounds(512, &hub_edges, 64);
        let flat = triangle_rounds(512, &flat_edges, 64);
        assert!(
            hub.visitors > flat.visitors,
            "hubby PA should generate more length-2 work: {} vs {}",
            hub.visitors,
            flat.visitors
        );
    }

    #[test]
    fn more_processors_never_hurt() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(5);
        let r4 = bfs_rounds(gen.num_vertices(), &edges, 4, 0, false);
        let r64 = bfs_rounds(gen.num_vertices(), &edges, 64, 0, false);
        assert!(r64.rounds <= r4.rounds);
    }
}
