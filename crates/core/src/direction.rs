//! Direction-optimizing BFS (DESIGN.md §13).
//!
//! The asynchronous visitor BFS always expands *top-down*: every frontier
//! vertex pushes a candidate along every out-edge. On scale-free graphs
//! the two or three hub-heavy middle levels then inspect nearly every edge
//! of the graph. Beamer-style direction optimization (Buluç–Madduri,
//! PAPERS.md) flips those levels *bottom-up*: every still-unvisited vertex
//! scans its own adjacency for any parent already in the frontier and
//! stops at the first hit, which on fat frontiers touches a small prefix
//! of each list instead of the whole edge set.
//!
//! This module drives the existing [`VisitorQueue`] level-synchronously:
//!
//! - dense per-rank **frontier / visited bitmaps**
//!   ([`havoq_util::parallel::AtomicBitVec`]) live alongside the visitor
//!   heap, indexed by local vertex index;
//! - each level both directions *generate candidate visitors*
//!   `(vertex, level+1, parent)` pushed through the ordinary CRC-framed
//!   mailbox, so ghost filtering, split-vertex replica chains and the
//!   integrity plane are inherited unchanged;
//! - [`VisitorQueue::drain_round`] delivers a round to a non-terminal
//!   quiescence cut and parks the surviving visitors, which are exactly
//!   the next frontier (master and replica copies both);
//! - before a bottom-up level the master frontier bits cross the wire as
//!   sparse words on a [`FrontierPlane`], OR-ed into a global bitmap on
//!   every rank;
//! - the switch heuristic runs on per-level `all_reduce_sum` collectives
//!   of frontier size and frontier/unvisited edge counts, so every rank
//!   takes the same direction deterministically.
//!
//! **Determinism.** Levels are direction-invariant (a vertex's BFS level
//! is a graph property). Parents are made direction-invariant by breaking
//! ties toward the *minimum-id* level-`L` neighbor: [`DirBfsVisitor`]'s
//! `pre_visit` keeps the lexicographic minimum of `(length, parent)`, so
//! top-down — which delivers one candidate per frontier in-neighbor —
//! reduces to the min-id neighbor at delivery; bottom-up scans each local
//! adjacency *slice* in sorted order (the distributed sort orders targets),
//! so its early-exit hit is the slice minimum, and the same delivery-side
//! reduction takes the minimum across a split vertex's chain slices. Both
//! directions therefore converge to identical `(length, parent)` state on
//! symmetrized graphs, which is what the fingerprint-equivalence sweeps
//! assert under chaos/lossy faults, threads ∈ {1,4} and crash-restore.

use std::time::Instant;

use havoq_comm::{FrontierPlane, RankCtx, SendShard, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;
use havoq_util::parallel::{AtomicBitVec, PerWorker, WorkerPool};

use crate::algorithms::bfs::{BfsConfig, BfsData, BfsResult, UNREACHED};
use crate::queue::VisitorQueue;
use crate::visitor::{Role, Visitor, VisitorPush};

/// Which engine (and direction policy) a BFS traversal uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DirectionMode {
    /// The historical asynchronous visitor loop (paper Algorithm 1) —
    /// no round barriers, always top-down. The default.
    #[default]
    Async,
    /// Level-synchronous engine, forced top-down every level.
    TopDown,
    /// Level-synchronous engine, forced bottom-up every level.
    BottomUp,
    /// Level-synchronous engine with the Beamer alpha/beta heuristic.
    Auto,
}

impl DirectionMode {
    /// Parse a CLI token (`top`, `bottom`, `auto`, `async`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "top" | "topdown" | "top-down" => Some(Self::TopDown),
            "bottom" | "bottomup" | "bottom-up" => Some(Self::BottomUp),
            "auto" => Some(Self::Auto),
            "async" | "queue" => Some(Self::Async),
            _ => None,
        }
    }
}

/// Direction-optimization knobs on [`crate::queue::TraversalConfig`].
///
/// The classic Beamer heuristic: switch top-down → bottom-up when the
/// frontier's edge count exceeds `unvisited_edges / alpha`, and back
/// top-down when the frontier shrinks below `num_vertices / beta`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectionConfig {
    pub mode: DirectionMode,
    /// Top-down → bottom-up threshold (Beamer's α, default 14).
    pub alpha: u64,
    /// Bottom-up → top-down threshold (Beamer's β, default 24).
    pub beta: u64,
}

impl Default for DirectionConfig {
    fn default() -> Self {
        Self { mode: DirectionMode::Async, alpha: 14, beta: 24 }
    }
}

/// Expansion direction of one level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    Top,
    Bottom,
}

impl Direction {
    /// Trace-column label (`top` / `bottom`).
    pub fn label(self) -> &'static str {
        match self {
            Direction::Top => "top",
            Direction::Bottom => "bottom",
        }
    }
}

/// One level of the per-run direction trace. All fields are global
/// (all-reduced), hence identical on every rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelTrace {
    /// The frontier level being expanded (source = level 0).
    pub level: u64,
    /// Direction the heuristic (or forced mode) chose.
    pub dir: Direction,
    /// Global frontier vertex count at this level.
    pub frontier: u64,
    /// Global sum of whole-adjacency degrees of frontier vertices.
    pub frontier_edges: u64,
    /// Global adjacency entries inspected generating the next level.
    pub inspected: u64,
    /// Global candidate visitors pushed (before ghost filtering).
    pub candidates: u64,
}

/// A direction-engine BFS run: the ordinary [`BfsResult`] plus the
/// per-level direction trace and the global edge-inspection total.
#[derive(Clone, Debug)]
pub struct DirBfsRun {
    pub result: BfsResult,
    pub trace: Vec<LevelTrace>,
    /// Global adjacency entries inspected across all levels — the number
    /// the ≥3× top-down-vs-auto acceptance gate compares.
    pub edges_inspected: u64,
}

/// The direction engine's BFS visitor. Same 24-byte wire record as the
/// asynchronous [`crate::algorithms::bfs::BfsVisitor`], but `pre_visit`
/// keeps the lexicographic minimum of `(length, parent)` — the delivery-
/// side reduction that makes parents deterministic in both directions.
/// Its `visit` never runs: the engine parks survivors into frontier
/// bitmaps instead of executing them.
#[derive(Clone, Copy, Debug)]
pub struct DirBfsVisitor {
    pub vertex: VertexId,
    pub length: u64,
    pub parent: u64,
}

impl WireCodec for DirBfsVisitor {
    const WIRE_SIZE: usize = 24;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.length.encode(&mut buf[8..16]);
        self.parent.encode(&mut buf[16..24]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        DirBfsVisitor {
            vertex: VertexId::decode(&buf[..8], ctx),
            length: u64::decode(&buf[8..16], ctx),
            parent: u64::decode(&buf[16..24], ctx),
        }
    }
}

impl Visitor for DirBfsVisitor {
    type Data = BfsData;
    /// Same monotone lattice as asynchronous BFS, so ghost filtering stays
    /// safe: a ghost slot only ever reflects values already sent to the
    /// master, and the lexicographic order is a total monotone order.
    const GHOSTS_ALLOWED: bool = true;

    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    #[inline]
    fn pre_visit(&self, data: &mut BfsData, _role: Role) -> bool {
        // lexicographic (length, parent) minimum — deterministic parent
        // tie-break toward the min-id neighbor at the min level
        if self.length < data.length || (self.length == data.length && self.parent < data.parent) {
            data.length = self.length;
            data.parent = self.parent;
            true
        } else {
            false
        }
    }

    fn visit(&self, _g: &DistGraph, _data: &mut BfsData, _q: &mut dyn VisitorPush<Self>) {
        debug_assert!(false, "direction engine never executes visit");
    }

    #[inline]
    fn priority(&self, other: &Self) -> std::cmp::Ordering {
        self.length.cmp(&other.length)
    }

    #[inline]
    fn merge(into: &mut BfsData, update: &BfsData) {
        if update.length < into.length
            || (update.length == into.length && update.parent < into.parent)
        {
            *into = *update;
        }
    }
}

/// Per-worker scratch for one parallel generation pass.
#[derive(Default)]
struct GenLedger {
    shard: SendShard<DirBfsVisitor>,
    inspected: u64,
    pushed: u64,
}

/// Extra engine state serialized next to the queue snapshot at a
/// checkpoint cut (see [`VisitorQueue::round_checkpoint`]): everything the
/// level loop needs that is not derivable from the per-vertex state.
struct EngineCut {
    level: u64,
    dir: Direction,
    edges_inspected: u64,
    top_down_levels: u64,
    bottom_up_levels: u64,
    trace: Vec<LevelTrace>,
}

impl EngineCut {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(8 * (6 + 6 * self.trace.len()));
        let mut put = |v: u64| buf.extend_from_slice(&v.to_le_bytes());
        put(self.level);
        put(match self.dir {
            Direction::Top => 0,
            Direction::Bottom => 1,
        });
        put(self.edges_inspected);
        put(self.top_down_levels);
        put(self.bottom_up_levels);
        put(self.trace.len() as u64);
        for t in &self.trace {
            for v in [
                t.level,
                match t.dir {
                    Direction::Top => 0,
                    Direction::Bottom => 1,
                },
                t.frontier,
                t.frontier_edges,
                t.inspected,
                t.candidates,
            ] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        buf
    }

    fn decode(bytes: &[u8]) -> Self {
        let mut pos = 0usize;
        let mut take = || {
            let v = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
            pos += 8;
            v
        };
        let level = take();
        let dir = if take() == 0 { Direction::Top } else { Direction::Bottom };
        let edges_inspected = take();
        let top_down_levels = take();
        let bottom_up_levels = take();
        let len = take() as usize;
        let mut trace = Vec::with_capacity(len);
        for _ in 0..len {
            trace.push(LevelTrace {
                level: take(),
                dir: if take() == 0 { Direction::Top } else { Direction::Bottom },
                frontier: take(),
                frontier_edges: take(),
                inspected: take(),
                candidates: take(),
            });
        }
        Self { level, dir, edges_inspected, top_down_levels, bottom_up_levels, trace }
    }
}

/// Run direction-optimizing BFS from `source`. Collective; requires a
/// symmetrized graph (bottom-up treats a vertex's out-neighbors as its
/// in-neighbors, which is exactly the Graph500 / RMAT workload shape).
/// `cfg.traversal.direction.mode` must not be [`DirectionMode::Async`] —
/// [`crate::algorithms::bfs::bfs`] dispatches that to the visitor loop.
pub fn direction_bfs(ctx: &RankCtx, g: &DistGraph, source: VertexId, cfg: &BfsConfig) -> DirBfsRun {
    let dcfg = cfg.traversal.direction;
    assert_ne!(dcfg.mode, DirectionMode::Async, "direction engine needs a non-Async mode");
    let start = Instant::now();
    let mut q = VisitorQueue::<DirBfsVisitor>::new(ctx, g, cfg.traversal);
    let mut plane = FrontierPlane::open(ctx);
    let n = g.num_vertices();
    let nloc = g.num_local_vertices();
    let frontier = AtomicBitVec::new(nloc);
    let visited = AtomicBitVec::new(nloc);
    let global_frontier = AtomicBitVec::new(n as usize);
    let pool = (cfg.traversal.threads > 1).then(|| WorkerPool::new(cfg.traversal.threads));

    // checkpoint machinery (same epoch/incarnation protocol as the
    // asynchronous checkpointed loop; cuts happen at round boundaries,
    // which are already confirmed consistent cuts)
    let mut store = cfg.checkpoint.as_ref().map(|spec| spec.build_store());
    let mut epoch: u64 = 0;
    let mut incarnation: u64 = 0;
    // start "due" so epoch 0 — which crash injection spares — exists
    let mut processed_since: u64 = u64::MAX;

    let mut trace: Vec<LevelTrace> = Vec::new();
    let mut level: u64 = 0;
    let mut dir = match dcfg.mode {
        DirectionMode::BottomUp => Direction::Bottom,
        _ => Direction::Top,
    };

    if g.is_master(source) {
        q.push(DirBfsVisitor { vertex: source, length: 0, parent: source.0 });
    }
    let mut scratch: Vec<DirBfsVisitor> = Vec::new();
    let mut newly: Vec<DirBfsVisitor> = Vec::new();
    q.drain_round(&mut scratch, &mut newly);
    fold_frontier(g, &frontier, &visited, &mut newly);

    loop {
        // -- checkpoint cut (round boundaries only; collective decision) --
        if let (Some(spec), Some(store_ref)) = (cfg.checkpoint.as_ref(), store.as_mut()) {
            let due = processed_since >= spec.every.max(1);
            if due {
                let s = q.stats_mut();
                let cut = EngineCut {
                    level,
                    dir,
                    edges_inspected: s.edges_inspected,
                    top_down_levels: s.top_down_levels,
                    bottom_up_levels: s.bottom_up_levels,
                    trace: trace.clone(),
                };
                let extra = cut.encode();
                if let Some(bytes) =
                    q.round_checkpoint(ctx, spec, store_ref, &mut epoch, &mut incarnation, &extra)
                {
                    // The whole world rewound: restore loop state from the
                    // epoch's extra bytes and rebuild the bitmaps from the
                    // restored per-vertex state.
                    let cut = EngineCut::decode(&bytes);
                    level = cut.level;
                    dir = cut.dir;
                    trace = cut.trace;
                    let s = q.stats_mut();
                    s.edges_inspected = cut.edges_inspected;
                    s.top_down_levels = cut.top_down_levels;
                    s.bottom_up_levels = cut.bottom_up_levels;
                    frontier.clear_all();
                    visited.clear_all();
                    for li in 0..nloc {
                        let d = &q.state()[li];
                        if d.length != UNREACHED {
                            visited.test_and_set(li);
                            if d.length == level {
                                frontier.test_and_set(li);
                            }
                        }
                    }
                }
                processed_since = 0;
            }
        }

        // -- frontier statistics (masters only; identical on all ranks) --
        let mut loc_nf = 0u64;
        let mut loc_mf = 0u64;
        frontier.for_each_set(|li| {
            let v = g.vertex_at(li);
            if g.is_master(v) {
                loc_nf += 1;
                loc_mf += g.total_degree(v);
            }
        });
        let n_f = ctx.all_reduce_sum(loc_nf);
        if n_f == 0 {
            break;
        }
        let m_f = ctx.all_reduce_sum(loc_mf);
        // unvisited edge mass, recomputed per level (restore-proof)
        let mut loc_mu = 0u64;
        for li in 0..nloc {
            if !visited.get(li) {
                let v = g.vertex_at(li);
                if g.is_master(v) {
                    loc_mu += g.total_degree(v);
                }
            }
        }
        let m_u = ctx.all_reduce_sum(loc_mu);

        // -- direction decision (pure function of all-reduced values) --
        dir = match dcfg.mode {
            DirectionMode::TopDown => Direction::Top,
            DirectionMode::BottomUp => Direction::Bottom,
            DirectionMode::Auto => match dir {
                Direction::Top if m_f.saturating_mul(dcfg.alpha) > m_u => Direction::Bottom,
                Direction::Bottom if n_f.saturating_mul(dcfg.beta) < n => Direction::Top,
                unchanged => unchanged,
            },
            DirectionMode::Async => unreachable!(),
        };

        // -- bottom-up needs the global frontier bitmap on every rank --
        if dir == Direction::Bottom {
            global_frontier.clear_all();
            let mut ids: Vec<u64> = Vec::with_capacity(loc_nf as usize);
            frontier.for_each_set(|li| {
                let v = g.vertex_at(li);
                if g.is_master(v) {
                    ids.push(v.0);
                }
            });
            // sorted ids → sorted word list → deterministic wire traffic
            let mut words: Vec<(u64, u64)> = Vec::new();
            for id in ids {
                let wi = id / 64;
                let bit = 1u64 << (id % 64);
                match words.last_mut() {
                    Some((w, bits)) if *w == wi => *bits |= bit,
                    _ => words.push((wi, bit)),
                }
            }
            q.stats_mut().frontier_words_sent += words.len() as u64;
            plane.exchange(&words, |idx, bits| global_frontier.or_word(idx as usize, bits));
        }

        // -- generate next-level candidates --
        let (loc_inspected, loc_pushed) = match &pool {
            Some(pool) => generate_parallel(
                &mut q,
                g,
                pool,
                dir,
                level,
                &frontier,
                &visited,
                &global_frontier,
            ),
            None => generate_serial(&mut q, g, dir, level, &frontier, &visited, &global_frontier),
        };
        let inspected = ctx.all_reduce_sum(loc_inspected);
        let candidates = ctx.all_reduce_sum(loc_pushed);
        {
            let s = q.stats_mut();
            s.edges_inspected += loc_inspected;
            match dir {
                Direction::Top => s.top_down_levels += 1,
                Direction::Bottom => s.bottom_up_levels += 1,
            }
        }
        trace.push(LevelTrace {
            level,
            dir,
            frontier: n_f,
            frontier_edges: m_f,
            inspected,
            candidates,
        });
        processed_since = processed_since.saturating_add(n_f);

        // -- deliver the round; survivors are the next frontier --
        newly.clear();
        q.drain_round(&mut scratch, &mut newly);
        level += 1;
        fold_frontier(g, &frontier, &visited, &mut newly);
    }

    let mut result = crate::algorithms::bfs::finish_result(ctx, g, q);
    result.elapsed = start.elapsed();
    result.stats.elapsed = result.elapsed;
    let edges_inspected = trace.iter().map(|t| t.inspected).sum();
    DirBfsRun { result, trace, edges_inspected }
}

/// Fold round survivors into the bitmaps: the new frontier replaces the
/// old, every survivor is marked visited. Survivors may repeat a vertex
/// (parent refinements forwarded down replica chains); `test_and_set`
/// dedups them.
fn fold_frontier(
    g: &DistGraph,
    frontier: &AtomicBitVec,
    visited: &AtomicBitVec,
    newly: &mut Vec<DirBfsVisitor>,
) {
    frontier.clear_all();
    for vis in newly.drain(..) {
        let li = g.local_index(vis.vertex);
        frontier.test_and_set(li);
        visited.test_and_set(li);
    }
}

/// Serial candidate generation for one level. Returns
/// `(adjacency entries inspected, candidates pushed)` for this rank.
fn generate_serial(
    q: &mut VisitorQueue<DirBfsVisitor>,
    g: &DistGraph,
    dir: Direction,
    level: u64,
    frontier: &AtomicBitVec,
    visited: &AtomicBitVec,
    global_frontier: &AtomicBitVec,
) -> (u64, u64) {
    let mut inspected = 0u64;
    let mut pushed = 0u64;
    match dir {
        Direction::Top => {
            frontier.for_each_set(|li| {
                let v = g.vertex_at(li);
                g.with_adj(v, |adj| {
                    inspected += adj.len() as u64;
                    for &t in adj {
                        pushed += 1;
                        q.push(DirBfsVisitor {
                            vertex: VertexId(t),
                            length: level + 1,
                            parent: v.0,
                        });
                    }
                });
            });
        }
        Direction::Bottom => {
            for li in 0..g.num_local_vertices() {
                if visited.get(li) {
                    continue;
                }
                let v = g.vertex_at(li);
                let (scanned, hit) = scan_for_parent(g, v, global_frontier);
                inspected += scanned;
                if let Some(parent) = hit {
                    pushed += 1;
                    q.push(DirBfsVisitor { vertex: v, length: level + 1, parent });
                }
            }
        }
    }
    (inspected, pushed)
}

/// Bottom-up inner loop: scan `v`'s local (sorted) adjacency slice for the
/// first neighbor in the global frontier. Early exit makes the hit the
/// slice minimum — the determinism anchor for bottom-up parents. Routed
/// through `DistGraph::scan_adj` so compressed storage stops its gap
/// decoder at the hit instead of materializing the whole slice; the
/// scanned count (and so `edges_inspected`) is storage-invariant.
#[inline]
fn scan_for_parent(
    g: &DistGraph,
    v: VertexId,
    global_frontier: &AtomicBitVec,
) -> (u64, Option<u64>) {
    g.scan_adj(v, |t| global_frontier.get(t as usize))
}

/// Parallel candidate generation: workers sweep static chunks of the local
/// index space, staging pushes in per-worker shards the coordinator
/// absorbs in worker order — the wire sees a deterministic record stream
/// for a given thread count, and delivery is order-independent anyway
/// (lexicographic minimum at `pre_visit`). Inspection counts are
/// partition-independent: each vertex contributes the same scan length
/// whichever worker owns it.
#[allow(clippy::too_many_arguments)]
fn generate_parallel(
    q: &mut VisitorQueue<DirBfsVisitor>,
    g: &DistGraph,
    pool: &WorkerPool,
    dir: Direction,
    level: u64,
    frontier: &AtomicBitVec,
    visited: &AtomicBitVec,
    global_frontier: &AtomicBitVec,
) -> (u64, u64) {
    let nloc = g.num_local_vertices();
    let workers = pool.size();
    let mut ledgers: PerWorker<GenLedger> = PerWorker::new_with(workers, |_| GenLedger::default());
    {
        let ledgers_ref: &PerWorker<GenLedger> = &ledgers;
        let job = move |w: usize| {
            // safety: worker `w` is the only thread touching cell `w`
            let ledger = unsafe { ledgers_ref.cell(w) };
            let begin = nloc * w / workers;
            let end = nloc * (w + 1) / workers;
            for li in begin..end {
                match dir {
                    Direction::Top => {
                        if !frontier.get(li) {
                            continue;
                        }
                        let v = g.vertex_at(li);
                        g.with_adj(v, |adj| {
                            ledger.inspected += adj.len() as u64;
                            for &t in adj {
                                ledger.pushed += 1;
                                ledger.shard.send(
                                    g.min_owner(VertexId(t)),
                                    DirBfsVisitor {
                                        vertex: VertexId(t),
                                        length: level + 1,
                                        parent: v.0,
                                    },
                                );
                            }
                        });
                    }
                    Direction::Bottom => {
                        if visited.get(li) {
                            continue;
                        }
                        let v = g.vertex_at(li);
                        let (scanned, hit) = scan_for_parent(g, v, global_frontier);
                        ledger.inspected += scanned;
                        if let Some(parent) = hit {
                            ledger.pushed += 1;
                            ledger.shard.send(
                                g.min_owner(v),
                                DirBfsVisitor { vertex: v, length: level + 1, parent },
                            );
                        }
                    }
                }
            }
        };
        pool.broadcast(&job);
    }
    let mut inspected = 0u64;
    let mut pushed = 0u64;
    for ledger in ledgers.iter_mut() {
        inspected += ledger.inspected;
        pushed += ledger.pushed;
        q.absorb_generated(&mut ledger.shard, ledger.pushed);
        ledger.inspected = 0;
        ledger.pushed = 0;
    }
    (inspected, pushed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_cli_tokens() {
        assert_eq!(DirectionMode::parse("top"), Some(DirectionMode::TopDown));
        assert_eq!(DirectionMode::parse("bottom-up"), Some(DirectionMode::BottomUp));
        assert_eq!(DirectionMode::parse("auto"), Some(DirectionMode::Auto));
        assert_eq!(DirectionMode::parse("async"), Some(DirectionMode::Async));
        assert_eq!(DirectionMode::parse("sideways"), None);
    }

    #[test]
    fn pre_visit_keeps_lexicographic_minimum() {
        let mut d = BfsData::default();
        let a = DirBfsVisitor { vertex: VertexId(7), length: 3, parent: 9 };
        assert!(a.pre_visit(&mut d, Role::Master));
        // same level, smaller parent wins
        let b = DirBfsVisitor { vertex: VertexId(7), length: 3, parent: 5 };
        assert!(b.pre_visit(&mut d, Role::Master));
        assert_eq!((d.length, d.parent), (3, 5));
        // same level, larger parent loses
        let c = DirBfsVisitor { vertex: VertexId(7), length: 3, parent: 6 };
        assert!(!c.pre_visit(&mut d, Role::Master));
        // smaller level always wins
        let e = DirBfsVisitor { vertex: VertexId(7), length: 2, parent: 100 };
        assert!(e.pre_visit(&mut d, Role::Master));
        assert_eq!((d.length, d.parent), (2, 100));
    }

    #[test]
    fn engine_cut_roundtrips() {
        let cut = EngineCut {
            level: 4,
            dir: Direction::Bottom,
            edges_inspected: 12345,
            top_down_levels: 2,
            bottom_up_levels: 2,
            trace: vec![
                LevelTrace {
                    level: 0,
                    dir: Direction::Top,
                    frontier: 1,
                    frontier_edges: 16,
                    inspected: 16,
                    candidates: 16,
                },
                LevelTrace {
                    level: 1,
                    dir: Direction::Bottom,
                    frontier: 14,
                    frontier_edges: 900,
                    inspected: 120,
                    candidates: 80,
                },
            ],
        };
        let back = EngineCut::decode(&cut.encode());
        assert_eq!(back.level, 4);
        assert_eq!(back.dir, Direction::Bottom);
        assert_eq!(back.edges_inspected, 12345);
        assert_eq!(back.trace, cut.trace);
    }
}
