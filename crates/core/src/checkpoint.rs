//! Checkpointing a traversal: the per-rank state blob and its wire format.
//!
//! At a checkpoint cut (see `VisitorQueue::do_traversal_checkpointed`) each
//! rank freezes four things — the per-vertex algorithm state, the ghost
//! table contents, the parked visitor heap, and the mailbox's wire
//! sequence-number table — plus the queue's high-water counters, and
//! serializes them through the same [`WireCodec`] impls that put visitors
//! on the wire. The resulting blob goes to a
//! [`havoq_nvram::checkpoint::CheckpointStore`], which frames it with an
//! epoch header and commit marker; this module owns only the payload
//! layout:
//!
//! ```text
//! [ state count u64    | count × V::Data ]
//! [ ghost count u64    | count × (vertex u64, V::Data) ]
//! [ heap count u64     | count × (V, tiebreak u64) ]
//! [ seq count u64      | count × u64 ]
//! [ 6 × u64 high-water counters ]
//! ```
//!
//! Every section is length-prefixed and [`QueueCheckpoint::decode`]
//! verifies the buffer is consumed exactly, so truncated or padded blobs
//! are rejected even when the store-level checksum is not consulted.

use havoq_comm::WireCodec;
use havoq_nvram::{BlockDevice, IoConfig, MemDevice, PageCache, PageCacheConfig};
use std::sync::Arc;

use havoq_nvram::checkpoint::CheckpointStore;

use crate::visitor::Visitor;

/// Knobs of a checkpointed traversal. `Copy` so it can ride inside the
/// per-algorithm config structs.
#[derive(Clone, Copy, Debug)]
pub struct CheckpointSpec {
    /// Visitors a rank executes between checkpoint cuts before it votes
    /// for the next cut (the `--checkpoint-every` knob). The traversal
    /// also writes an epoch-0 checkpoint before executing anything, so a
    /// restore point always exists.
    pub every: u64,
    /// Page size of the per-rank checkpoint log's cache.
    pub page_size: usize,
    /// Cache capacity in pages; kept small so checkpoints actually spill
    /// to the device instead of parking in DRAM.
    pub cache_pages: usize,
    /// I/O engine for the checkpoint log; asynchronous by default so the
    /// blob write hands off to the background drain (the write-behind
    /// path PR 3 added) instead of stalling the traversal.
    pub io: IoConfig,
    /// Storage-corruption injection: after `(rank, epoch)` commits its
    /// blob (marker and all), one payload byte is flipped through the
    /// cache — silent corruption only the blob's own checksum can catch.
    /// A later restore walking past that epoch must fall back to the
    /// next-oldest intact one and count it in
    /// [`TraversalStats::restore_epoch_fallbacks`](crate::queue::TraversalStats).
    pub corrupt_committed: Option<(usize, u64)>,
}

impl Default for CheckpointSpec {
    fn default() -> Self {
        Self {
            every: 4096,
            page_size: 4096,
            cache_pages: 64,
            io: IoConfig::asynchronous(),
            corrupt_committed: None,
        }
    }
}

impl CheckpointSpec {
    pub fn with_every(mut self, every: u64) -> Self {
        self.every = every;
        self
    }

    /// Corrupt the committed blob of `(rank, epoch)` right after its
    /// commit marker lands (see `corrupt_committed`).
    pub fn with_corrupt_committed(mut self, rank: usize, epoch: u64) -> Self {
        self.corrupt_committed = Some((rank, epoch));
        self
    }

    /// Build one rank's checkpoint log as configured.
    pub fn build_store(&self) -> CheckpointStore {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::new());
        let cache = Arc::new(PageCache::new(
            dev,
            PageCacheConfig {
                page_size: self.page_size,
                capacity_pages: self.cache_pages,
                io: self.io,
                ..PageCacheConfig::default()
            },
        ));
        CheckpointStore::new(cache)
    }
}

/// Why a state blob failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlobError {
    /// The buffer ended inside a section.
    Truncated,
    /// Bytes remained after the last section.
    TrailingBytes,
}

impl std::fmt::Display for BlobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Self::Truncated => "checkpoint blob truncated mid-section",
            Self::TrailingBytes => "checkpoint blob has trailing bytes",
        })
    }
}

impl std::error::Error for BlobError {}

/// The queue's high-water counters, frozen at the cut and restored with
/// the state so a resumed run reports the logical progress of the work
/// that actually survives in its arrays.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueCounters {
    pub arrival_seq: u64,
    pub visitors_executed: u64,
    pub visitors_pushed: u64,
    pub ghost_checked: u64,
    pub ghost_filtered: u64,
    pub replica_forwards: u64,
}

/// One rank's frozen traversal state — everything `do_traversal` needs to
/// resume from the cut as if the crash never happened.
pub struct QueueCheckpoint<V: Visitor + WireCodec> {
    /// Per-vertex algorithm state, indexed by local vertex index.
    pub state: Vec<V::Data>,
    /// Ghost slot contents, sorted by vertex id.
    pub ghosts: Vec<(u64, V::Data)>,
    /// Parked frontier: heap visitors with their tie-break keys.
    pub heap: Vec<(V, u64)>,
    /// Next wire sequence number per destination rank at the cut. Never
    /// re-applied on restore (rewinding sequence numbers would punch gaps
    /// into receiver dedup windows); recorded for monotonicity audits.
    pub wire_seqs: Vec<u64>,
    pub counters: QueueCounters,
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], BlobError> {
        if self.pos + n > self.buf.len() {
            return Err(BlobError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u64(&mut self) -> Result<u64, BlobError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_record<T: WireCodec>(buf: &mut Vec<u8>, rec: &T) {
    let at = buf.len();
    buf.resize(at + T::WIRE_SIZE, 0);
    rec.encode(&mut buf[at..]);
}

impl<V: Visitor + WireCodec> QueueCheckpoint<V>
where
    V::Data: WireCodec<DecodeCtx = ()>,
{
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(
            8 * 4
                + self.state.len() * <V::Data as WireCodec>::WIRE_SIZE
                + self.ghosts.len() * (8 + <V::Data as WireCodec>::WIRE_SIZE)
                + self.heap.len() * (V::WIRE_SIZE + 8)
                + self.wire_seqs.len() * 8
                + 6 * 8,
        );
        put_u64(&mut buf, self.state.len() as u64);
        for d in &self.state {
            put_record(&mut buf, d);
        }
        put_u64(&mut buf, self.ghosts.len() as u64);
        for (v, d) in &self.ghosts {
            put_u64(&mut buf, *v);
            put_record(&mut buf, d);
        }
        put_u64(&mut buf, self.heap.len() as u64);
        for (vis, tie) in &self.heap {
            put_record(&mut buf, vis);
            put_u64(&mut buf, *tie);
        }
        put_u64(&mut buf, self.wire_seqs.len() as u64);
        for s in &self.wire_seqs {
            put_u64(&mut buf, *s);
        }
        let c = &self.counters;
        for v in [
            c.arrival_seq,
            c.visitors_executed,
            c.visitors_pushed,
            c.ghost_checked,
            c.ghost_filtered,
            c.replica_forwards,
        ] {
            put_u64(&mut buf, v);
        }
        buf
    }

    /// Decode a blob, consuming the buffer exactly. `ctx` is the visitor
    /// wire decode context (the same one the traversal's mailbox uses).
    pub fn decode(bytes: &[u8], ctx: &V::DecodeCtx) -> Result<Self, BlobError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let n = r.u64()? as usize;
        let mut state = Vec::with_capacity(n);
        for _ in 0..n {
            state.push(<V::Data>::decode(r.take(<V::Data as WireCodec>::WIRE_SIZE)?, &()));
        }
        let n = r.u64()? as usize;
        let mut ghosts = Vec::with_capacity(n);
        for _ in 0..n {
            let v = r.u64()?;
            let d = <V::Data>::decode(r.take(<V::Data as WireCodec>::WIRE_SIZE)?, &());
            ghosts.push((v, d));
        }
        let n = r.u64()? as usize;
        let mut heap = Vec::with_capacity(n);
        for _ in 0..n {
            let vis = V::decode(r.take(V::WIRE_SIZE)?, ctx);
            let tie = r.u64()?;
            heap.push((vis, tie));
        }
        let n = r.u64()? as usize;
        let mut wire_seqs = Vec::with_capacity(n);
        for _ in 0..n {
            wire_seqs.push(r.u64()?);
        }
        let counters = QueueCounters {
            arrival_seq: r.u64()?,
            visitors_executed: r.u64()?,
            visitors_pushed: r.u64()?,
            ghost_checked: r.u64()?,
            ghost_filtered: r.u64()?,
            replica_forwards: r.u64()?,
        };
        if r.pos != bytes.len() {
            return Err(BlobError::TrailingBytes);
        }
        Ok(Self { state, ghosts, heap, wire_seqs, counters })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::bfs::{BfsData, BfsVisitor};
    use havoq_graph::types::VertexId;

    fn sample() -> QueueCheckpoint<BfsVisitor> {
        QueueCheckpoint {
            state: vec![
                BfsData::default(),
                BfsData { length: 2, parent: 7 },
                BfsData { length: 5, parent: 1 },
            ],
            ghosts: vec![(3, BfsData { length: 1, parent: 0 }), (9, BfsData::default())],
            heap: vec![
                (BfsVisitor { vertex: VertexId(4), length: 3, parent: 1 }, 4),
                (BfsVisitor { vertex: VertexId(8), length: 3, parent: 2 }, 8),
            ],
            wire_seqs: vec![12, 0, 44],
            counters: QueueCounters {
                arrival_seq: 17,
                visitors_executed: 200,
                visitors_pushed: 310,
                ghost_checked: 42,
                ghost_filtered: 21,
                replica_forwards: 3,
            },
        }
    }

    #[test]
    fn state_blob_roundtrips() {
        let ck = sample();
        let bytes = ck.encode();
        let back = QueueCheckpoint::<BfsVisitor>::decode(&bytes, &()).unwrap();
        assert_eq!(back.state.len(), 3);
        assert_eq!(back.state[1].length, 2);
        assert_eq!(back.state[1].parent, 7);
        assert_eq!(back.ghosts, ck.ghosts.iter().map(|(v, d)| (*v, *d)).collect::<Vec<_>>());
        assert_eq!(back.heap.len(), 2);
        assert_eq!(back.heap[0].0.vertex, VertexId(4));
        assert_eq!(back.heap[1].1, 8);
        assert_eq!(back.wire_seqs, vec![12, 0, 44]);
        assert_eq!(back.counters, ck.counters);
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let ck: QueueCheckpoint<BfsVisitor> = QueueCheckpoint {
            state: vec![],
            ghosts: vec![],
            heap: vec![],
            wire_seqs: vec![],
            counters: QueueCounters::default(),
        };
        let bytes = ck.encode();
        let back = QueueCheckpoint::<BfsVisitor>::decode(&bytes, &()).unwrap();
        assert!(back.state.is_empty() && back.heap.is_empty());
    }

    #[test]
    fn every_truncation_point_is_rejected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert_eq!(
                QueueCheckpoint::<BfsVisitor>::decode(&bytes[..cut], &()).err(),
                Some(BlobError::Truncated),
                "prefix of {cut} bytes must be rejected"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().encode();
        bytes.push(0);
        assert_eq!(
            QueueCheckpoint::<BfsVisitor>::decode(&bytes, &()).err(),
            Some(BlobError::TrailingBytes)
        );
    }
}
