//! The distributed asynchronous visitor queue (paper Algorithm 1).
//!
//! Each rank runs one queue instance:
//!
//! - `push(visitor)` — filter through locally stored ghost state, then send
//!   to the target vertex's master partition (`min_owner`).
//! - `check_mailbox()` — receive visitors, `pre_visit` them against local
//!   state, queue survivors in the local priority heap, and forward them to
//!   the next replica if the vertex's adjacency list continues on higher
//!   ranks (the split-vertex chain of Figure 3).
//! - `do_traversal()` — the asynchronous driving loop: poll the mailbox,
//!   execute locally queued visitors in priority order, and terminate when
//!   the quiescence detector confirms the queue is globally empty.
//!
//! Visitors with equal algorithm priority are ordered by vertex id, the
//! Section V-A locality optimization that makes semi-external adjacency
//! reads page-sequential.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as MemOrdering};
use std::time::{Duration, Instant};

use havoq_comm::{CutVerdict, Mailbox, MailboxConfig, Quiescence, RankCtx, SendShard, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;
use havoq_nvram::checkpoint::CheckpointStore;
use havoq_util::parallel::{AtomicBitVec, PerWorker, SharedSlots, WorkerPool};

use crate::checkpoint::{CheckpointSpec, QueueCheckpoint, QueueCounters};
use crate::direction::DirectionConfig;
use crate::ghost::GhostTable;
use crate::visitor::{Role, Visitor, VisitorPush};

/// Traversal tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct TraversalConfig {
    /// Ghost slots per partition (paper default: 256; Figure 13 sweeps
    /// this). Ignored for algorithms with `GHOSTS_ALLOWED = false`.
    pub ghosts: usize,
    /// Mailbox aggregation / routing configuration.
    pub mailbox: MailboxConfig,
    /// Max visitors executed between consecutive mailbox polls.
    pub poll_batch: usize,
    /// Order equal-priority visitors by vertex id (the Section V-A
    /// page-locality optimization). When false, equal-priority visitors
    /// run in arrival order — the ablation baseline, which scatters
    /// semi-external adjacency reads across pages.
    pub locality_order: bool,
    /// Worker threads executing `visit` inside this rank. `1` (the
    /// default) keeps the historical fully serial loop, bit for bit. With
    /// `threads > 1` each rank pops frontier chunks from its heap and fans
    /// the `visit` calls out to a worker pool (DESIGN.md §11); the
    /// mailbox, quiescence and checkpoint paths stay on the coordinator
    /// thread, so the wire format and integrity counters are unchanged.
    pub threads: usize,
    /// Direction-optimizing traversal knobs (BFS only): forced or
    /// heuristic top-down/bottom-up switching with Beamer-style
    /// alpha/beta thresholds. The default mode keeps the historical
    /// asynchronous visitor loop (DESIGN.md §13).
    pub direction: DirectionConfig,
}

impl Default for TraversalConfig {
    fn default() -> Self {
        Self {
            ghosts: 256,
            mailbox: MailboxConfig::default(),
            poll_batch: 128,
            locality_order: true,
            threads: 1,
            direction: DirectionConfig::default(),
        }
    }
}

impl TraversalConfig {
    /// Builder: set the intra-rank worker thread count (clamped to ≥ 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder: set the direction-optimizing traversal mode.
    pub fn with_direction(mut self, mode: crate::direction::DirectionMode) -> Self {
        self.direction.mode = mode;
        self
    }
}

/// Per-rank traversal counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct TraversalStats {
    /// Visitors whose `visit` procedure ran on this rank.
    pub visitors_executed: u64,
    /// Visitors pushed on this rank (before ghost filtering).
    pub visitors_pushed: u64,
    /// Pushes that were checked against a local ghost slot.
    pub ghost_checked: u64,
    /// Pushes suppressed by the ghost filter (communication saved).
    pub ghost_filtered: u64,
    /// Visitors forwarded along a split-vertex replica chain.
    pub replica_forwards: u64,
    /// End-to-end payloads sent / received by the mailbox.
    pub payload_sent: u64,
    pub payload_received: u64,
    /// Quiescence-detection waves completed.
    pub termination_waves: u64,
    /// Wire bytes shipped / unpacked by this rank's mailbox (frame headers
    /// included; self-sends never hit the wire and are not counted).
    pub bytes_sent: u64,
    pub bytes_received: u64,
    /// Frames this rank shipped.
    pub frames_sent: u64,
    /// Sends that found a full bounded channel and ran the slow path.
    pub backpressure_stalls: u64,
    /// Mean fill ratio of shipped frames in `(0, 1]` (0.0 if none shipped).
    pub mean_frame_fill: f64,
    /// Injected-fault events observed by this rank's mailbox channel (all
    /// zero on fault-free runs): frames held by a delay, deliveries that
    /// overtook an earlier arrival, frames this rank shipped twice,
    /// duplicate deliveries dropped, receive-stall windows opened, and
    /// deliveries that paid the slow-rank throttle.
    pub fault_delayed: u64,
    pub fault_reordered: u64,
    pub fault_duplicated: u64,
    pub fault_deduped: u64,
    pub fault_stalled: u64,
    pub fault_throttled: u64,
    /// Frames arriving at this rank with an injected bit flip / injected
    /// wire loss (all zero on fault-free runs).
    pub fault_corrupted: u64,
    pub frames_dropped_injected: u64,
    /// Integrity-layer recovery observed by this rank: corrupt frames its
    /// CRC check rejected, NACKs it sent for gaps/rejections, and
    /// retransmissions it performed as a sender. On a lossy run every
    /// injected corruption must show up in `corrupt_frames_detected` —
    /// the sweep's zero-undetected-corruption invariant.
    pub corrupt_frames_detected: u64,
    pub nacks_sent: u64,
    pub retransmits: u64,
    /// Wall-clock time inside `do_traversal`.
    pub elapsed: Duration,
    /// Time this rank spent blocked on demand page fills (semi-external
    /// storage only; zero for in-memory runs).
    pub io_stall: Duration,
    /// Time this rank spent writing dirty victims inline on the access path
    /// (eviction stalls; driven to zero by async write-behind).
    pub evict_stall: Duration,
    /// Mean sampled depth of the async I/O request queue (0.0 in sync mode
    /// or in-memory runs).
    pub io_avg_queue_depth: f64,
    /// Peak outstanding async I/O requests observed.
    pub io_queue_peak: u64,
    /// Checkpoint epochs this rank committed (checkpointed traversals
    /// only; includes the epoch-0 checkpoint).
    pub checkpoints_written: u64,
    /// Payload bytes serialized into committed checkpoints.
    pub checkpoint_bytes: u64,
    /// Times this rank was the injected crash victim (its epoch was torn).
    pub crashes: u64,
    /// Times this rank rewound to an earlier checkpoint epoch.
    pub restores: u64,
    /// Committed checkpoint epochs this rank skipped at restore because
    /// their payload failed its checksum (silent storage corruption): the
    /// blob is treated exactly like a torn write and the world agrees on
    /// the next-oldest intact epoch.
    pub restore_epoch_fallbacks: u64,
    /// Wall-clock spent serializing and writing checkpoints plus restoring
    /// from them — the numerator of the checkpoint overhead percentage.
    pub checkpoint_time: Duration,
    /// Semi-external storage integrity (zero for in-memory runs): page
    /// fills whose bytes mismatched the page's write-back checksum, and
    /// the device re-reads issued to recover them.
    pub page_checksum_failures: u64,
    pub page_reread_retries: u64,
    /// Direction-optimizing engine only (zero on the asynchronous visitor
    /// path): adjacency entries examined while generating candidates —
    /// whole frontier slices top-down, early-exit prefixes bottom-up —
    /// plus the per-direction level counts and the frontier-bitmap words
    /// this rank shipped to peers before bottom-up levels.
    pub edges_inspected: u64,
    pub top_down_levels: u64,
    pub bottom_up_levels: u64,
    pub frontier_words_sent: u64,
    /// Compressed CSR storage only (all zero otherwise): adjacency slices
    /// decoded and encoded bytes pulled through the gap decoder during the
    /// traversal, plus the pool sizes — encoded versus raw `u64` targets —
    /// so the decode-CPU-vs-IO-stall trade is measured alongside the cache
    /// counters above.
    pub adj_decodes: u64,
    pub adj_decoded_bytes: u64,
    pub edge_bytes_encoded: u64,
    pub edge_bytes_raw: u64,
}

impl TraversalStats {
    /// Sum of all injected-fault events this rank observed — nonzero iff
    /// the fault layer perturbed this rank's traversal traffic.
    pub fn total_faults(&self) -> u64 {
        self.fault_delayed
            + self.fault_reordered
            + self.fault_duplicated
            + self.fault_deduped
            + self.fault_stalled
            + self.fault_throttled
            + self.fault_corrupted
            + self.frames_dropped_injected
    }
}

/// Min-heap adapter: smallest algorithm priority first, then the
/// tie-break key — the vertex id under the Section V-A locality order, or
/// an arrival sequence number when that optimization is ablated.
struct HeapEntry<V: Visitor>(V, u64);

impl<V: Visitor> PartialEq for HeapEntry<V> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<V: Visitor> Eq for HeapEntry<V> {}

impl<V: Visitor> PartialOrd for HeapEntry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<V: Visitor> Ord for HeapEntry<V> {
    fn cmp(&self, other: &Self) -> Ordering {
        // reversed: BinaryHeap is a max-heap, we want the minimum out first
        other.0.priority(&self.0).then_with(|| other.1.cmp(&self.1))
    }
}

/// One rank's distributed visitor queue for visitor type `V`.
///
/// `V` must implement [`WireCodec`]: visitors cross ranks as fixed-size
/// records packed into byte frames (see `havoq_comm::codec`).
pub struct VisitorQueue<'g, V: Visitor + WireCodec> {
    g: &'g DistGraph,
    rank: usize,
    mailbox: Mailbox<V>,
    quiescence: Quiescence,
    heap: BinaryHeap<HeapEntry<V>>,
    state: Vec<V::Data>,
    ghosts: GhostTable<V::Data>,
    cfg: TraversalConfig,
    stats: TraversalStats,
    /// Arrival counter backing the non-locality tie-break.
    arrival_seq: u64,
    /// Wire decode context, kept so checkpointed heap visitors can be
    /// reconstructed on restore.
    decode_ctx: V::DecodeCtx,
}

impl<'g, V: Visitor + WireCodec> VisitorQueue<'g, V> {
    /// Collectively create a queue over `g`. Every rank must call this the
    /// same number of times in the same order (each call draws a fresh
    /// world-agreed channel tag).
    pub fn new(ctx: &RankCtx, g: &'g DistGraph, cfg: TraversalConfig) -> Self
    where
        V::DecodeCtx: Default,
    {
        Self::new_with_ctx(ctx, g, cfg, V::DecodeCtx::default())
    }

    /// Like [`VisitorQueue::new`] but supplying the wire decode context for
    /// visitor types carrying rank-replicated shared state (e.g. the
    /// subset table of subset triangle counting).
    pub fn new_with_ctx(
        ctx: &RankCtx,
        g: &'g DistGraph,
        cfg: TraversalConfig,
        decode_ctx: V::DecodeCtx,
    ) -> Self {
        let tag = ctx.auto_tag();
        let mailbox = Mailbox::open_with(ctx, tag, cfg.mailbox, decode_ctx.clone());
        let quiescence = Quiescence::new(ctx, tag);
        let ghosts = if V::GHOSTS_ALLOWED && cfg.ghosts > 0 {
            GhostTable::select(g, cfg.ghosts)
        } else {
            GhostTable::empty()
        };
        let state = vec![V::Data::default(); g.num_local_vertices()];
        Self {
            g,
            rank: ctx.rank(),
            mailbox,
            quiescence,
            heap: BinaryHeap::new(),
            state,
            ghosts,
            cfg,
            stats: TraversalStats::default(),
            arrival_seq: 0,
            decode_ctx,
        }
    }

    /// Initialize local vertex state (e.g. k-core's `degree + 1` counters).
    /// Replicas are initialized identically on every rank in their chain
    /// because the closure only sees replicated information.
    pub fn init_state(&mut self, mut f: impl FnMut(VertexId, &DistGraph) -> V::Data) {
        for (li, slot) in self.state.iter_mut().enumerate() {
            *slot = f(self.g.vertex_at(li), self.g);
        }
    }

    /// The graph this queue traverses.
    pub fn graph(&self) -> &'g DistGraph {
        self.g
    }

    /// Local vertex state, indexed by local vertex index.
    pub fn state(&self) -> &[V::Data] {
        &self.state
    }

    /// Consume the queue, keeping the final state.
    pub fn into_state(self) -> Vec<V::Data> {
        self.state
    }

    /// Number of ghost slots active for this traversal.
    pub fn ghost_count(&self) -> usize {
        self.ghosts.len()
    }

    /// Local traversal statistics (valid after `do_traversal`).
    pub fn stats(&self) -> TraversalStats {
        let mut s = self.stats;
        s.payload_sent = self.mailbox.sent_count();
        s.payload_received = self.mailbox.received_count();
        s.termination_waves = self.quiescence.waves_run();
        let mb = self.mailbox.stats();
        s.bytes_sent = mb.bytes_sent;
        s.bytes_received = mb.bytes_received;
        s.frames_sent = mb.frames_sent;
        s.backpressure_stalls = mb.backpressure_stalls;
        s.mean_frame_fill = mb.mean_frame_fill();
        // Fault counters live in the world-shared transport matrix; report
        // this rank's share: events observed at our receiver, plus frames
        // we duplicated as a sender.
        let tr = self.mailbox.transport_stats();
        let me = self.rank;
        let recv_col = |m: &[u64]| (0..tr.ranks).map(|src| m[src * tr.ranks + me]).sum::<u64>();
        let send_row = |m: &[u64]| (0..tr.ranks).map(|dst| m[me * tr.ranks + dst]).sum::<u64>();
        s.fault_delayed = recv_col(&tr.fault_delays);
        s.fault_reordered = recv_col(&tr.fault_reorders);
        s.fault_duplicated = send_row(&tr.fault_dups);
        s.fault_deduped = recv_col(&tr.fault_dedups);
        s.fault_stalled = recv_col(&tr.fault_stalls);
        s.fault_throttled = recv_col(&tr.fault_throttles);
        s.fault_corrupted = recv_col(&tr.fault_corrupts);
        s.frames_dropped_injected = recv_col(&tr.fault_drops);
        s.corrupt_frames_detected = recv_col(&tr.corrupt_detected);
        s.nacks_sent = recv_col(&tr.nacks);
        s.retransmits = send_row(&tr.retransmits);
        s
    }

    /// Byte-level mailbox counters (frames, fill histogram, pool activity).
    pub fn mailbox_stats(&self) -> havoq_comm::MailboxStatsSnapshot {
        self.mailbox.stats()
    }

    /// The mailbox's transport traffic matrix (world-shared snapshot).
    pub fn transport_stats(&self) -> havoq_comm::ChannelStatsSnapshot {
        self.mailbox.transport_stats()
    }

    /// Push a visitor into the distributed queue (Algorithm 1, `push`).
    pub fn push(&mut self, visitor: V) {
        push_impl(self.g, &mut self.mailbox, &mut self.ghosts, &mut self.stats, visitor);
    }

    /// Receive and pre-visit incoming visitors; returns payloads delivered
    /// (Algorithm 1, `check_mailbox`).
    fn check_mailbox(&mut self, scratch: &mut Vec<V>) -> usize {
        scratch.clear();
        self.mailbox.poll(scratch);
        let delivered = scratch.len();
        for visitor in scratch.drain(..) {
            let v = visitor.vertex();
            debug_assert!(
                self.g.is_local(v),
                "visitor for {v} delivered to wrong rank {}",
                self.rank
            );
            let li = self.g.local_index(v);
            let role = if self.g.min_owner(v) == self.rank { Role::Master } else { Role::Replica };
            if visitor.pre_visit(&mut self.state[li], role) {
                // forward along the replica chain before queuing locally so
                // downstream partitions overlap with our local work
                if self.rank < self.g.max_owner(v) {
                    self.stats.replica_forwards += 1;
                    self.mailbox.send(self.rank + 1, visitor.clone());
                }
                let tiebreak = if self.cfg.locality_order {
                    v.0
                } else {
                    self.arrival_seq += 1;
                    self.arrival_seq
                };
                self.heap.push(HeapEntry(visitor, tiebreak));
            }
        }
        delivered
    }

    /// Run the asynchronous traversal to completion (Algorithm 1,
    /// `do_traversal`). Initial visitors must already have been pushed.
    pub fn do_traversal(&mut self) {
        if self.cfg.threads > 1 {
            self.do_traversal_parallel();
            return;
        }
        let start = Instant::now();
        let mut scratch: Vec<V> = Vec::new();
        loop {
            let delivered = self.check_mailbox(&mut scratch);
            let mut budget = self.cfg.poll_batch;
            while budget > 0 {
                let Some(HeapEntry(vis, _)) = self.heap.pop() else { break };
                budget -= 1;
                self.stats.visitors_executed += 1;
                let li = self.g.local_index(vis.vertex());
                // split borrows: vertex state vs. push path
                let Self { g, mailbox, ghosts, state, stats, .. } = self;
                let mut pusher = Pusher { g, mailbox, ghosts, stats };
                vis.visit(g, &mut state[li], &mut pusher);
            }
            if delivered == 0 && self.heap.is_empty() {
                self.mailbox.flush();
                let idle = self.mailbox.pending_out() == 0;
                if self.quiescence.poll(
                    self.mailbox.sent_count(),
                    self.mailbox.received_count(),
                    idle,
                ) {
                    break;
                }
                // idle but not terminated: give peer ranks the core instead
                // of spin-polling (matters when ranks are oversubscribed
                // onto few physical cores, as in the simulation)
                std::thread::yield_now();
            }
        }
        self.stats.elapsed += start.elapsed();
    }

    /// Multi-threaded `do_traversal` body (`cfg.threads > 1`): pop frontier
    /// chunks from the heap and execute their `visit` calls on the worker
    /// pool, keeping every mailbox/quiescence interaction on this
    /// (coordinator) thread. See DESIGN.md §11 for the execution protocol.
    fn do_traversal_parallel(&mut self) {
        let start = Instant::now();
        let pool = WorkerPool::new(self.cfg.threads);
        let locks = AtomicBitVec::new(self.state.len());
        let mut ledgers: PerWorker<WorkerLedger<V>> =
            PerWorker::new_with(pool.size(), |_| WorkerLedger::default());
        let chunk_cap = self.cfg.poll_batch.saturating_mul(pool.size()).max(1);
        let mut chunk: Vec<V> = Vec::new();
        let mut scratch: Vec<V> = Vec::new();
        loop {
            let delivered = self.check_mailbox(&mut scratch);
            let executed = self.run_chunk(&pool, &locks, &mut ledgers, &mut chunk, chunk_cap);
            if delivered == 0 && executed == 0 && self.heap.is_empty() {
                self.mailbox.flush();
                let idle = self.mailbox.pending_out() == 0;
                if self.quiescence.poll(
                    self.mailbox.sent_count(),
                    self.mailbox.received_count(),
                    idle,
                ) {
                    break;
                }
                std::thread::yield_now();
            }
        }
        self.stats.elapsed += start.elapsed();
    }

    /// Pop up to `limit` visitors from the heap and execute them on the
    /// worker pool; returns the number executed. Workers claim blocks of
    /// the chunk from a shared cursor, guard each per-vertex state slot
    /// with a bit lock only while copying the `visit_seed` out and while
    /// `merge`-ing the result back (never across the `visit` call itself,
    /// which may block on semi-external page fills), and stage every push
    /// in a per-worker [`SendShard`]. After the pool quiesces the
    /// coordinator absorbs the shards in worker order through the exact
    /// ghost-filter + mailbox path a serial push takes, so wire traffic,
    /// ghost counters and termination accounting are identical in kind to
    /// the serial loop's.
    fn run_chunk(
        &mut self,
        pool: &WorkerPool,
        locks: &AtomicBitVec,
        ledgers: &mut PerWorker<WorkerLedger<V>>,
        chunk: &mut Vec<V>,
        limit: usize,
    ) -> usize {
        chunk.clear();
        while chunk.len() < limit {
            let Some(HeapEntry(vis, _)) = self.heap.pop() else { break };
            chunk.push(vis);
        }
        if chunk.is_empty() {
            return 0;
        }
        let executed = chunk.len();
        {
            let g = self.g;
            let slots = SharedSlots::new(self.state.as_mut_slice());
            let cursor = AtomicUsize::new(0);
            let chunk_ref: &[V] = chunk;
            let ledgers_ref: &PerWorker<WorkerLedger<V>> = &*ledgers;
            // Small blocks keep load balance when per-visitor cost varies
            // (page faults, skewed degrees) without cursor contention.
            const BLOCK: usize = 16;
            let job = move |w: usize| {
                // safety: worker `w` is the only thread touching cell `w`
                let ledger = unsafe { ledgers_ref.cell(w) };
                loop {
                    let begin = cursor.fetch_add(BLOCK, MemOrdering::Relaxed);
                    if begin >= chunk_ref.len() {
                        break;
                    }
                    let end = (begin + BLOCK).min(chunk_ref.len());
                    for vis in &chunk_ref[begin..end] {
                        let li = g.local_index(vis.vertex());
                        locks.lock(li);
                        // safety: the bit lock serializes slot `li`
                        let mut seed = V::visit_seed(unsafe { slots.slot(li) });
                        locks.unlock(li);
                        let mut pusher =
                            ShardPusher { g, shard: &mut ledger.shard, pushed: &mut ledger.pushed };
                        vis.visit(g, &mut seed, &mut pusher);
                        locks.lock(li);
                        // safety: as above — lock held for the merge only
                        V::merge(unsafe { slots.slot(li) }, &seed);
                        locks.unlock(li);
                        ledger.executed += 1;
                    }
                }
            };
            pool.broadcast(&job);
        }
        // Absorb in fixed worker order: visitor-level interleaving inside a
        // chunk is scheduling-dependent, but everything that reaches the
        // wire does so from this single-threaded, deterministic drain.
        let Self { mailbox, ghosts, stats, .. } = self;
        for ledger in ledgers.iter_mut() {
            stats.visitors_executed += ledger.executed;
            stats.visitors_pushed += ledger.pushed;
            ledger.executed = 0;
            ledger.pushed = 0;
            for (dst, visitor) in ledger.shard.drain() {
                if ghost_pass::<V>(ghosts, stats, &visitor) {
                    mailbox.send(dst, visitor);
                }
            }
        }
        executed
    }

    /// Drive one level-synchronous *round* to a confirmed global cut
    /// (direction-optimizing engine, DESIGN.md §13). Polls the mailbox,
    /// pre-visits and replica-forwards arrivals exactly like the
    /// asynchronous loop, but *parks* every surviving visitor into `newly`
    /// instead of executing its `visit` — the engine folds survivors into
    /// the next frontier bitmap and generates the following level's
    /// candidates itself. Returns once [`Quiescence::poll_cut`] confirms a
    /// non-terminal consistent cut: every candidate sent anywhere this
    /// round has been delivered, pre-visited and (where it improved state)
    /// forwarded down its replica chain, and nothing is in flight.
    ///
    /// Collective: every rank must call `drain_round` the same number of
    /// times, and the caller must run at least one collective between
    /// consecutive rounds (the engine's frontier-size `all_reduce_sum`),
    /// so no rank can inject round-`k+1` traffic while a peer still polls
    /// round `k`.
    pub(crate) fn drain_round(&mut self, scratch: &mut Vec<V>, newly: &mut Vec<V>) {
        loop {
            let delivered = self.check_mailbox(scratch);
            while let Some(HeapEntry(vis, _)) = self.heap.pop() {
                self.stats.visitors_executed += 1;
                newly.push(vis);
            }
            if delivered == 0 {
                self.mailbox.flush();
                let drained = self.mailbox.pending_out() == 0;
                // flag=false: the cut is a reusable level barrier, never a
                // terminal verdict — the engine terminates on an empty
                // global frontier, not on queue quiescence.
                if self
                    .quiescence
                    .poll_cut(
                        self.mailbox.sent_count(),
                        self.mailbox.received_count(),
                        drained,
                        false,
                    )
                    .is_some()
                {
                    return;
                }
                std::thread::yield_now();
            }
        }
    }

    /// Arm the quiescence detector's stall watchdog (lifecycle engine,
    /// DESIGN.md §15): after `waves` consecutive completed waves that are
    /// stable but payload-unbalanced, every rank's next
    /// [`Self::drain_round_side`] returns [`CutVerdict::Abort`].
    pub(crate) fn arm_watchdog(&mut self, waves: u64) {
        self.quiescence.arm_watchdog(waves);
    }

    /// Like [`Self::drain_round`], but co-settles a *side mailbox* (the
    /// lifecycle engine's cancel plane) under the same cut and surfaces the
    /// stall watchdog's verdict. The side channel's payload counters are
    /// summed into the quiescence poll, so a cut cannot confirm while a
    /// cancel record is still in flight anywhere — at every confirmed cut,
    /// all ranks hold the same set of side records. Arrivals on the side
    /// channel are appended to `side_in` (never executed or forwarded:
    /// side records are rank-terminal control messages).
    pub(crate) fn drain_round_side<C: Send + WireCodec + 'static>(
        &mut self,
        scratch: &mut Vec<V>,
        newly: &mut Vec<V>,
        side: &mut Mailbox<C>,
        side_in: &mut Vec<C>,
    ) -> CutVerdict {
        loop {
            let delivered = self.check_mailbox(scratch);
            let side_delivered = side.poll(side_in);
            while let Some(HeapEntry(vis, _)) = self.heap.pop() {
                self.stats.visitors_executed += 1;
                newly.push(vis);
            }
            if delivered == 0 && side_delivered == 0 {
                self.mailbox.flush();
                side.flush();
                let drained = self.mailbox.pending_out() == 0 && side.pending_out() == 0;
                // flag=false: cuts are reusable round barriers; the engine
                // decides termination from all-reduced frontier state.
                if let Some(verdict) = self.quiescence.poll_cut_watched(
                    self.mailbox.sent_count() + side.sent_count(),
                    self.mailbox.received_count() + side.received_count(),
                    drained,
                    false,
                ) {
                    return verdict;
                }
                std::thread::yield_now();
            }
        }
    }

    /// Absorb a worker-staged shard of generated candidates through the
    /// ghost filter + mailbox, in coordinator context (direction engine's
    /// parallel generation pass; mirrors the tail of [`Self::run_chunk`]).
    pub(crate) fn absorb_generated(&mut self, shard: &mut SendShard<V>, pushed: u64) {
        let Self { mailbox, ghosts, stats, .. } = self;
        stats.visitors_pushed += pushed;
        for (dst, visitor) in shard.drain() {
            if ghost_pass::<V>(ghosts, stats, &visitor) {
                mailbox.send(dst, visitor);
            }
        }
    }

    /// Mutable access to the traversal counters for same-crate engines
    /// layered on the queue (the direction engine's inspection counters).
    pub(crate) fn stats_mut(&mut self) -> &mut TraversalStats {
        &mut self.stats
    }

    /// Mutable access to the per-vertex state slice for same-crate engines
    /// that claim and expand frontier slots themselves (the lifecycle
    /// engine's exactly-once claim protocol, DESIGN.md §15).
    pub(crate) fn state_mut_slice(&mut self) -> &mut [V::Data] {
        &mut self.state
    }

    /// Run the traversal with periodic checkpoints and (fault-injected)
    /// crash/restore. Collective; every rank must call it with the same
    /// `spec`.
    ///
    /// The loop piggybacks checkpointing on the quiescence detector: once a
    /// rank has executed `spec.every` visitors since the last cut it parks
    /// its heap (still polling, pre-visiting and forwarding, so the global
    /// payload counters can settle) and votes for a cut via
    /// [`Quiescence::poll_cut`]. A cut confirms a consistent global state —
    /// `sent == recv` and stable across a full wave, so nothing is in
    /// flight and the entire frontier sits in local heaps — which is the
    /// only point where per-rank snapshots compose into a recoverable
    /// whole. Each rank then writes its blob as one epoch in its
    /// [`CheckpointStore`]. Cuts where every rank also reports "no local
    /// work" terminate the traversal directly (no trailing checkpoint).
    ///
    /// Crash injection: the shared fault plan deterministically names at
    /// most one victim per (epoch, incarnation) — a stand-in for a perfect
    /// failure detector, so all ranks agree on the failure without extra
    /// protocol. The victim's epoch write is torn (no commit marker); then
    /// *all* ranks rewind to the newest epoch complete everywhere
    /// (`all_reduce_min` of per-rank latest) — restoring mixed epochs
    /// across ranks would break exactly-once effects such as k-core's
    /// decrements. Wire sequence numbers are never rewound: receiver dedup
    /// windows must stay gap-free, and the restored state re-generates any
    /// undelivered work by re-execution.
    pub fn do_traversal_checkpointed(&mut self, ctx: &RankCtx, spec: &CheckpointSpec)
    where
        V::Data: WireCodec<DecodeCtx = ()>,
    {
        if self.cfg.threads > 1 {
            self.do_traversal_checkpointed_parallel(ctx, spec);
            return;
        }
        let start = Instant::now();
        let every = spec.every.max(1);
        let mut store = spec.build_store();
        let mut scratch: Vec<V> = Vec::new();
        let mut epoch: u64 = 0;
        let mut incarnation: u64 = 0;
        // Start "due": the first cut fires before any visitor executes, so
        // epoch 0 — which crash injection spares — always exists as a
        // restore point.
        let mut executed_since = every;
        loop {
            let delivered = self.check_mailbox(&mut scratch);
            if executed_since < every {
                let mut budget = self.cfg.poll_batch;
                while budget > 0 && executed_since < every {
                    let Some(HeapEntry(vis, _)) = self.heap.pop() else { break };
                    budget -= 1;
                    executed_since += 1;
                    self.stats.visitors_executed += 1;
                    let li = self.g.local_index(vis.vertex());
                    let Self { g, mailbox, ghosts, state, stats, .. } = self;
                    let mut pusher = Pusher { g, mailbox, ghosts, stats };
                    vis.visit(g, &mut state[li], &mut pusher);
                }
            }
            let due = executed_since >= every;
            let no_work = delivered == 0 && self.heap.is_empty();
            if due || no_work {
                self.mailbox.flush();
                let drained = self.mailbox.pending_out() == 0;
                // `due` stays out of the flag: when every rank runs dry the
                // cut reads as termination even if thresholds were pending.
                let flag = no_work && drained;
                match self.quiescence.poll_cut(
                    self.mailbox.sent_count(),
                    self.mailbox.received_count(),
                    drained,
                    flag,
                ) {
                    Some(true) => break,
                    Some(false) => {
                        self.checkpoint_cut(ctx, spec, &mut store, &mut epoch, &mut incarnation);
                        executed_since = 0;
                    }
                    None => std::thread::yield_now(),
                }
            }
        }
        self.stats.elapsed += start.elapsed();
    }

    /// Multi-threaded checkpointed traversal (`cfg.threads > 1`). Chunks
    /// are additionally bounded by the remaining checkpoint budget, so a
    /// cut can only happen *between* chunks — i.e. with the worker pool
    /// quiesced (every `broadcast` joins before returning) and every
    /// staged shard absorbed. The snapshot a cut exports is therefore
    /// exactly the coordinator's single-threaded view: same state vector,
    /// same heap, same counters, same wire sequence numbers as a serial
    /// rank parked at the same cut.
    fn do_traversal_checkpointed_parallel(&mut self, ctx: &RankCtx, spec: &CheckpointSpec)
    where
        V::Data: WireCodec<DecodeCtx = ()>,
    {
        let start = Instant::now();
        let every = spec.every.max(1);
        let mut store = spec.build_store();
        let pool = WorkerPool::new(self.cfg.threads);
        let locks = AtomicBitVec::new(self.state.len());
        let mut ledgers: PerWorker<WorkerLedger<V>> =
            PerWorker::new_with(pool.size(), |_| WorkerLedger::default());
        let chunk_cap = self.cfg.poll_batch.saturating_mul(pool.size()).max(1);
        let mut chunk: Vec<V> = Vec::new();
        let mut scratch: Vec<V> = Vec::new();
        let mut epoch: u64 = 0;
        let mut incarnation: u64 = 0;
        let mut executed_since = every;
        loop {
            let delivered = self.check_mailbox(&mut scratch);
            let mut executed = 0;
            if executed_since < every {
                let limit = chunk_cap.min((every - executed_since) as usize);
                executed = self.run_chunk(&pool, &locks, &mut ledgers, &mut chunk, limit);
                executed_since += executed as u64;
            }
            let due = executed_since >= every;
            let no_work = delivered == 0 && executed == 0 && self.heap.is_empty();
            if due || no_work {
                self.mailbox.flush();
                let drained = self.mailbox.pending_out() == 0;
                let flag = no_work && drained;
                match self.quiescence.poll_cut(
                    self.mailbox.sent_count(),
                    self.mailbox.received_count(),
                    drained,
                    flag,
                ) {
                    Some(true) => break,
                    Some(false) => {
                        self.checkpoint_cut(ctx, spec, &mut store, &mut epoch, &mut incarnation);
                        executed_since = 0;
                    }
                    None => std::thread::yield_now(),
                }
            }
        }
        self.stats.elapsed += start.elapsed();
    }

    /// One confirmed checkpoint cut: write this rank's epoch (torn if we
    /// are the injected victim), then — if anyone crashed — collectively
    /// rewind every rank to the newest globally complete epoch.
    fn checkpoint_cut(
        &mut self,
        ctx: &RankCtx,
        spec: &CheckpointSpec,
        store: &mut CheckpointStore,
        epoch: &mut u64,
        incarnation: &mut u64,
    ) where
        V::Data: WireCodec<DecodeCtx = ()>,
    {
        let blob = self.export_checkpoint().encode();
        if let Some(bytes) = self.cut_core(ctx, spec, store, epoch, incarnation, blob) {
            let ck = QueueCheckpoint::<V>::decode(&bytes, &self.decode_ctx)
                .expect("committed checkpoint blob decodes");
            self.restore_from(ck);
        }
    }

    /// Like [`Self::checkpoint_cut`] but for engines that carry extra
    /// per-rank loop state alongside the queue snapshot (the direction
    /// engine's level counter, direction and trace — DESIGN.md §13). The
    /// blob is `[extra_len u64][extra][queue blob]`; on a crash-triggered
    /// world rewind the queue part is restored in place and the `extra`
    /// bytes of the restore epoch are returned for the caller to rewind
    /// its own state. Collective under the same contract as
    /// `checkpoint_cut`: all ranks enter together at a confirmed cut.
    pub(crate) fn round_checkpoint(
        &mut self,
        ctx: &RankCtx,
        spec: &CheckpointSpec,
        store: &mut CheckpointStore,
        epoch: &mut u64,
        incarnation: &mut u64,
        extra: &[u8],
    ) -> Option<Vec<u8>>
    where
        V::Data: WireCodec<DecodeCtx = ()>,
    {
        let queue_blob = self.export_checkpoint().encode();
        let mut blob = Vec::with_capacity(8 + extra.len() + queue_blob.len());
        blob.extend_from_slice(&(extra.len() as u64).to_le_bytes());
        blob.extend_from_slice(extra);
        blob.extend_from_slice(&queue_blob);
        let bytes = self.cut_core(ctx, spec, store, epoch, incarnation, blob)?;
        let extra_len = u64::from_le_bytes(bytes[..8].try_into().unwrap()) as usize;
        let ck = QueueCheckpoint::<V>::decode(&bytes[8 + extra_len..], &self.decode_ctx)
            .expect("committed checkpoint blob decodes");
        self.restore_from(ck);
        Some(bytes[8..8 + extra_len].to_vec())
    }

    /// Shared body of one checkpoint cut: write this rank's epoch blob
    /// (torn if we are the injected victim), then — if anyone crashed —
    /// collectively agree on the newest globally complete epoch, truncate
    /// above it and return its blob bytes so the caller can restore.
    /// Returns `None` when no crash fired (epoch advances normally).
    fn cut_core(
        &mut self,
        ctx: &RankCtx,
        spec: &CheckpointSpec,
        store: &mut CheckpointStore,
        epoch: &mut u64,
        incarnation: &mut u64,
        blob: Vec<u8>,
    ) -> Option<Vec<u8>> {
        let t = Instant::now();
        let victim = ctx.crash_victim(*epoch, *incarnation);
        if victim == Some(self.rank) {
            store.write_epoch_torn(*epoch, &blob);
            self.stats.crashes += 1;
            self.mailbox.channel_stats().record_crash(self.rank);
        } else {
            store.write_epoch(*epoch, &blob);
            self.stats.checkpoints_written += 1;
            self.stats.checkpoint_bytes += blob.len() as u64;
            self.mailbox.channel_stats().record_checkpoint(self.rank);
            if spec.corrupt_committed == Some((self.rank, *epoch)) && *incarnation == 0 {
                let flipped = store.corrupt_committed_payload(*epoch);
                debug_assert!(flipped, "corruption target epoch was just committed");
            }
        }
        if victim.is_some() {
            // Walk past torn *and* silently corrupt epochs: a committed
            // blob failing its checksum is treated exactly like a torn
            // one, but counted — the restore-fallback telemetry.
            let (local_latest, fallbacks) = store.latest_complete_epoch_with_fallbacks();
            let local_latest =
                local_latest.expect("epoch 0 is never torn, so a complete epoch exists");
            self.stats.restore_epoch_fallbacks += fallbacks;
            let target = ctx.all_reduce_min(local_latest);
            let bytes = store.read_epoch(target).expect("agreed restore epoch is complete");
            // Drop every epoch above the restore target: the rewound run
            // will re-number them, and a stale complete epoch from this
            // incarnation must never satisfy a later recovery's
            // `latest_complete_epoch`.
            store.truncate_above(target);
            self.stats.restores += 1;
            self.mailbox.channel_stats().record_restore(self.rank);
            *incarnation += 1;
            *epoch = target + 1;
            self.stats.checkpoint_time += t.elapsed();
            Some(bytes)
        } else {
            *epoch += 1;
            // Post-cut barrier: without it a fast rank resumes executing
            // and its sends can land in a slow rank's heap *before* that
            // rank has taken its own epoch snapshot. The snapshots would
            // then not form a consistent cut — the receipt checkpointed,
            // the send not — and a restore would replay the message:
            // double delivery, which non-idempotent visitors (triangle's
            // counter increments) turn into wrong answers. The crash
            // branch above is already synchronized by `all_reduce_min`.
            ctx.barrier();
            self.stats.checkpoint_time += t.elapsed();
            None
        }
    }

    /// Freeze this rank's traversal state at a confirmed cut.
    fn export_checkpoint(&self) -> QueueCheckpoint<V>
    where
        V::Data: WireCodec<DecodeCtx = ()>,
    {
        QueueCheckpoint {
            state: self.state.clone(),
            ghosts: self.ghosts.export(),
            heap: self.heap.iter().map(|HeapEntry(v, tie)| (v.clone(), *tie)).collect(),
            wire_seqs: self.mailbox.wire_seqs(),
            counters: QueueCounters {
                arrival_seq: self.arrival_seq,
                visitors_executed: self.stats.visitors_executed,
                visitors_pushed: self.stats.visitors_pushed,
                ghost_checked: self.stats.ghost_checked,
                ghost_filtered: self.stats.ghost_filtered,
                replica_forwards: self.stats.replica_forwards,
            },
        }
    }

    /// Rewind this rank to a decoded checkpoint. Wire sequence numbers are
    /// audited (monotonic vs. the snapshot) but never re-applied.
    fn restore_from(&mut self, ck: QueueCheckpoint<V>) {
        debug_assert_eq!(ck.state.len(), self.state.len(), "checkpoint state extent mismatch");
        #[cfg(debug_assertions)]
        for (cur, old) in self.mailbox.wire_seqs().iter().zip(&ck.wire_seqs) {
            debug_assert!(cur >= old, "wire sequence numbers must never rewind");
        }
        self.state = ck.state;
        self.ghosts.import(&ck.ghosts);
        self.heap = ck.heap.into_iter().map(|(v, tie)| HeapEntry(v, tie)).collect();
        self.arrival_seq = ck.counters.arrival_seq;
        let c = ck.counters;
        self.stats.visitors_executed = c.visitors_executed;
        self.stats.visitors_pushed = c.visitors_pushed;
        self.stats.ghost_checked = c.ghost_checked;
        self.stats.ghost_filtered = c.ghost_filtered;
        self.stats.replica_forwards = c.replica_forwards;
    }
}

impl<'g, V: Visitor + WireCodec> VisitorPush<V> for VisitorQueue<'g, V> {
    fn push(&mut self, visitor: V) {
        VisitorQueue::push(self, visitor);
    }
}

/// The ghost-filter stage of the push path: check the visitor against a
/// local ghost slot if one exists, counting checks and suppressions.
/// Returns whether the push should proceed to the mailbox. Runs only on
/// the coordinator thread (the ghost table is not synchronized).
fn ghost_pass<V: Visitor + WireCodec>(
    ghosts: &mut GhostTable<V::Data>,
    stats: &mut TraversalStats,
    visitor: &V,
) -> bool {
    if V::GHOSTS_ALLOWED {
        if let Some(gdata) = ghosts.get_mut(visitor.vertex()) {
            stats.ghost_checked += 1;
            if !visitor.pre_visit(gdata, Role::Ghost) {
                stats.ghost_filtered += 1;
                return false;
            }
        }
    }
    true
}

/// The push path, shared between the queue itself and the in-`visit` pusher.
fn push_impl<V: Visitor + WireCodec>(
    g: &DistGraph,
    mailbox: &mut Mailbox<V>,
    ghosts: &mut GhostTable<V::Data>,
    stats: &mut TraversalStats,
    visitor: V,
) {
    stats.visitors_pushed += 1;
    if ghost_pass::<V>(ghosts, stats, &visitor) {
        mailbox.send(g.min_owner(visitor.vertex()), visitor);
    }
}

struct Pusher<'a, V: Visitor + WireCodec> {
    g: &'a DistGraph,
    mailbox: &'a mut Mailbox<V>,
    ghosts: &'a mut GhostTable<V::Data>,
    stats: &'a mut TraversalStats,
}

impl<'a, V: Visitor + WireCodec> VisitorPush<V> for Pusher<'a, V> {
    fn push(&mut self, visitor: V) {
        push_impl(self.g, self.mailbox, self.ghosts, self.stats, visitor);
    }
}

/// Per-worker scratch for one parallel traversal: the staged outgoing
/// pushes plus the worker's share of the execution counters, merged into
/// [`TraversalStats`] by the coordinator when it absorbs the shard.
struct WorkerLedger<V: Visitor + WireCodec> {
    shard: SendShard<V>,
    executed: u64,
    pushed: u64,
}

impl<V: Visitor + WireCodec> Default for WorkerLedger<V> {
    fn default() -> Self {
        WorkerLedger { shard: SendShard::default(), executed: 0, pushed: 0 }
    }
}

/// Worker-side pusher: resolves the destination rank immediately (the
/// graph's ownership map is immutable and thread-safe) but defers the
/// ghost filter and the mailbox — both single-threaded — to the
/// coordinator's absorb pass.
struct ShardPusher<'a, V: Visitor + WireCodec> {
    g: &'a DistGraph,
    shard: &'a mut SendShard<V>,
    pushed: &'a mut u64,
}

impl<'a, V: Visitor + WireCodec> VisitorPush<V> for ShardPusher<'a, V> {
    fn push(&mut self, visitor: V) {
        *self.pushed += 1;
        self.shard.send(self.g.min_owner(visitor.vertex()), visitor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use havoq_comm::CommWorld;
    use havoq_graph::csr::GraphConfig;
    use havoq_graph::dist::PartitionStrategy;
    use havoq_graph::gen::rmat::RmatGenerator;
    use havoq_graph::types::Edge;

    /// Minimal "flood" visitor: marks every reachable vertex, no ordering,
    /// ghost-eligible (marking is idempotent and monotone).
    #[derive(Clone)]
    struct Flood {
        vertex: VertexId,
    }

    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    struct FloodData {
        marked: bool,
    }

    impl WireCodec for FloodData {
        const WIRE_SIZE: usize = 1;
        type DecodeCtx = ();

        fn encode(&self, buf: &mut [u8]) {
            buf[0] = self.marked as u8;
        }

        fn decode(buf: &[u8], _ctx: &()) -> Self {
            FloodData { marked: buf[0] != 0 }
        }
    }

    impl WireCodec for Flood {
        const WIRE_SIZE: usize = 8;
        type DecodeCtx = ();

        fn encode(&self, buf: &mut [u8]) {
            self.vertex.encode(buf);
        }

        fn decode(buf: &[u8], ctx: &()) -> Self {
            Flood { vertex: VertexId::decode(buf, ctx) }
        }
    }

    impl Visitor for Flood {
        type Data = FloodData;
        const GHOSTS_ALLOWED: bool = true;

        fn vertex(&self) -> VertexId {
            self.vertex
        }

        fn pre_visit(&self, data: &mut FloodData, _role: Role) -> bool {
            if data.marked {
                false
            } else {
                data.marked = true;
                true
            }
        }

        fn visit(&self, g: &DistGraph, _data: &mut FloodData, q: &mut dyn VisitorPush<Self>) {
            g.with_adj(self.vertex, |adj| {
                for &t in adj {
                    q.push(Flood { vertex: VertexId(t) });
                }
            });
        }

        fn priority(&self, _other: &Self) -> Ordering {
            Ordering::Equal
        }

        fn merge(into: &mut FloodData, update: &FloodData) {
            into.marked |= update.marked;
        }
    }

    fn ring_edges(n: u64) -> Vec<Edge> {
        (0..n).flat_map(|v| [Edge::new(v, (v + 1) % n), Edge::new((v + 1) % n, v)]).collect()
    }

    fn run_flood(p: usize, edges: &[Edge], cfg: TraversalConfig) -> u64 {
        let marked = CommWorld::run(p, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let mut q = VisitorQueue::<Flood>::new(ctx, &g, cfg);
            if g.is_master(VertexId(0)) {
                q.push(Flood { vertex: VertexId(0) });
            }
            q.do_traversal();
            // count marked masters
            let local: u64 = g
                .local_vertices()
                .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].marked)
                .count() as u64;
            ctx.all_reduce_sum(local)
        });
        marked[0]
    }

    #[test]
    fn flood_reaches_whole_ring() {
        let edges = ring_edges(64);
        for p in [1usize, 2, 4, 5] {
            assert_eq!(run_flood(p, &edges, TraversalConfig::default()), 64, "p={p}");
        }
    }

    #[test]
    fn flood_on_rmat_visits_reachable_set() {
        let gen = RmatGenerator::graph500(9);
        let edges = gen.symmetric_edges(77);
        // serial reachability reference from vertex 0
        let n = gen.num_vertices();
        let mut adj = vec![Vec::new(); n as usize];
        for e in &edges {
            if !e.is_self_loop() {
                adj[e.src as usize].push(e.dst);
            }
        }
        let mut seen = vec![false; n as usize];
        let mut stack = vec![0u64];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &t in &adj[v as usize] {
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        let expect = seen.iter().filter(|&&s| s).count() as u64;
        for p in [1usize, 4] {
            assert_eq!(run_flood(p, &edges, TraversalConfig::default()), expect, "p={p}");
        }
    }

    #[test]
    fn flood_with_routed_mailbox_matches_direct() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(5);
        let direct = run_flood(4, &edges, TraversalConfig::default());
        let mut cfg2d = TraversalConfig::default();
        cfg2d.mailbox.topology = havoq_comm::TopologyKind::Routed2D;
        let mut cfg3d = TraversalConfig::default();
        cfg3d.mailbox.topology = havoq_comm::TopologyKind::Routed3D;
        assert_eq!(run_flood(4, &edges, cfg2d), direct);
        assert_eq!(run_flood(8, &edges, cfg3d), direct);
    }

    #[test]
    fn ghosts_filter_redundant_pushes() {
        // star graph: every vertex points at hub 0 and back
        let n = 256u64;
        let edges: Vec<Edge> = (1..n).flat_map(|v| [Edge::new(v, 0), Edge::new(0, v)]).collect();
        let filtered = CommWorld::run(4, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let mut q = VisitorQueue::<Flood>::new(ctx, &g, TraversalConfig::default());
            if g.is_master(VertexId(1)) {
                q.push(Flood { vertex: VertexId(1) });
            }
            q.do_traversal();
            let marked: u64 = g
                .local_vertices()
                .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].marked)
                .count() as u64;
            assert_eq!(ctx.all_reduce_sum(marked), n, "whole star reached");
            ctx.all_reduce_sum(q.stats().ghost_filtered)
        });
        assert!(filtered[0] > 0, "hub ghost should filter repeat visitors");
    }

    #[test]
    fn stats_are_consistent() {
        let edges = ring_edges(32);
        let ok = CommWorld::run(3, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let mut q = VisitorQueue::<Flood>::new(ctx, &g, TraversalConfig::default());
            if g.is_master(VertexId(0)) {
                q.push(Flood { vertex: VertexId(0) });
            }
            q.do_traversal();
            let s = q.stats();
            let sent = ctx.all_reduce_sum(s.payload_sent);
            let recv = ctx.all_reduce_sum(s.payload_received);
            let executed = ctx.all_reduce_sum(s.visitors_executed);
            sent == recv && executed > 0 && executed <= recv
        });
        assert!(ok.iter().all(|&b| b));
    }

    #[test]
    fn multiple_traversals_in_one_world() {
        let edges = ring_edges(16);
        CommWorld::run(2, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            for _ in 0..3 {
                let mut q = VisitorQueue::<Flood>::new(ctx, &g, TraversalConfig::default());
                if g.is_master(VertexId(5)) {
                    q.push(Flood { vertex: VertexId(5) });
                }
                q.do_traversal();
                let marked: u64 = g
                    .local_vertices()
                    .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].marked)
                    .count() as u64;
                assert_eq!(ctx.all_reduce_sum(marked), 16);
            }
        });
    }

    #[test]
    fn locality_order_is_result_neutral() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(44);
        let count = |locality: bool| {
            let out = CommWorld::run(3, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                let cfg = TraversalConfig { locality_order: locality, ..Default::default() };
                let mut q = VisitorQueue::<Flood>::new(ctx, &g, cfg);
                if g.is_master(VertexId(0)) {
                    q.push(Flood { vertex: VertexId(0) });
                }
                q.do_traversal();
                let marked: u64 = g
                    .local_vertices()
                    .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].marked)
                    .count() as u64;
                ctx.all_reduce_sum(marked)
            });
            out[0]
        };
        assert_eq!(count(true), count(false), "ordering is a performance knob only");
    }

    /// Drive a flood with checkpointing and return (marked, per-world sums
    /// of checkpoints written, crashes, restores).
    fn run_flood_checkpointed(
        p: usize,
        edges: &[Edge],
        every: u64,
        faults: Option<havoq_comm::FaultConfig>,
    ) -> (u64, u64, u64, u64) {
        let out = CommWorld::run_with_faults(p, faults, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let mut q = VisitorQueue::<Flood>::new(ctx, &g, TraversalConfig::default());
            if g.is_master(VertexId(0)) {
                q.push(Flood { vertex: VertexId(0) });
            }
            let spec = crate::checkpoint::CheckpointSpec::default().with_every(every);
            q.do_traversal_checkpointed(ctx, &spec);
            let s = q.stats();
            let marked: u64 = g
                .local_vertices()
                .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].marked)
                .count() as u64;
            (
                ctx.all_reduce_sum(marked),
                ctx.all_reduce_sum(s.checkpoints_written),
                ctx.all_reduce_sum(s.crashes),
                ctx.all_reduce_sum(s.restores),
            )
        });
        out[0]
    }

    #[test]
    fn checkpointed_traversal_matches_plain() {
        let edges = ring_edges(64);
        for p in [1usize, 2, 4] {
            let (marked, ckpts, crashes, restores) = run_flood_checkpointed(p, &edges, 8, None);
            assert_eq!(marked, 64, "p={p}");
            assert!(ckpts >= p as u64, "every rank writes at least epoch 0 (p={p})");
            assert_eq!((crashes, restores), (0, 0), "fault-free run (p={p})");
        }
    }

    #[test]
    fn forced_crash_restores_and_converges() {
        let edges = ring_edges(64);
        for p in [2usize, 4] {
            let faults = havoq_comm::FaultConfig::quiet(7).with_forced_crash(p - 1, 2);
            let (marked, _ckpts, crashes, restores) =
                run_flood_checkpointed(p, &edges, 8, Some(faults));
            assert_eq!(marked, 64, "resumed flood reaches whole ring (p={p})");
            assert_eq!(crashes, 1, "exactly one torn epoch (p={p})");
            assert_eq!(restores, p as u64, "every rank rewinds together (p={p})");
        }
    }

    #[test]
    fn corrupt_committed_checkpoint_falls_back_one_epoch() {
        // Rank 0 commits epoch 2 and then its blob is silently damaged
        // (payload flip through the cache); rank p-1 tears epoch 2 as the
        // forced crash victim. At restore rank 0 must skip its corrupt
        // blob — exactly one counted fallback — and the world agrees on
        // epoch 1; the rewound traversal still floods the whole ring.
        let edges = ring_edges(64);
        for p in [2usize, 4] {
            let faults = havoq_comm::FaultConfig::quiet(7).with_forced_crash(p - 1, 2);
            let out = CommWorld::run_with_faults(p, Some(faults), |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                let mut q = VisitorQueue::<Flood>::new(ctx, &g, TraversalConfig::default());
                if g.is_master(VertexId(0)) {
                    q.push(Flood { vertex: VertexId(0) });
                }
                let spec = crate::checkpoint::CheckpointSpec::default()
                    .with_every(8)
                    .with_corrupt_committed(0, 2);
                q.do_traversal_checkpointed(ctx, &spec);
                let s = q.stats();
                let marked: u64 = g
                    .local_vertices()
                    .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].marked)
                    .count() as u64;
                (
                    ctx.all_reduce_sum(marked),
                    ctx.all_reduce_sum(s.crashes),
                    ctx.all_reduce_sum(s.restores),
                    ctx.all_reduce_sum(s.restore_epoch_fallbacks),
                )
            });
            let (marked, crashes, restores, fallbacks) = out[0];
            assert_eq!(marked, 64, "traversal completes from the earlier epoch (p={p})");
            assert_eq!(crashes, 1, "p={p}");
            assert_eq!(restores, p as u64, "p={p}");
            assert_eq!(fallbacks, 1, "rank 0 skipped exactly its corrupt blob (p={p})");
        }
    }

    /// Satellite check for the intra-rank worker pool: the Flood visitor's
    /// traversal counters are fully deterministic (marking is idempotent
    /// and ghost slots converge to "marked" regardless of interleaving),
    /// so the merged per-worker stat cells must reproduce the serial
    /// counts exactly at every thread count.
    #[test]
    fn parallel_stats_match_serial_exactly() {
        let gen = RmatGenerator::graph500(8);
        let edges = gen.symmetric_edges(21);
        let run = |threads: usize| {
            let out = CommWorld::run(2, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                let cfg = TraversalConfig::default().with_threads(threads);
                let mut q = VisitorQueue::<Flood>::new(ctx, &g, cfg);
                if g.is_master(VertexId(0)) {
                    q.push(Flood { vertex: VertexId(0) });
                }
                q.do_traversal();
                let s = q.stats();
                let marked: u64 = g
                    .local_vertices()
                    .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].marked)
                    .count() as u64;
                (
                    ctx.all_reduce_sum(marked),
                    ctx.all_reduce_sum(s.visitors_executed),
                    ctx.all_reduce_sum(s.visitors_pushed),
                    ctx.all_reduce_sum(s.ghost_checked),
                    ctx.all_reduce_sum(s.ghost_filtered),
                    ctx.all_reduce_sum(s.replica_forwards),
                    ctx.all_reduce_sum(s.payload_sent),
                    ctx.all_reduce_sum(s.payload_received),
                )
            });
            out[0]
        };
        let serial = run(1);
        for threads in [2usize, 4] {
            assert_eq!(run(threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_checkpointed_flood_converges_through_crash() {
        let edges = ring_edges(64);
        for p in [2usize, 4] {
            let out = CommWorld::run_with_faults(
                p,
                Some(havoq_comm::FaultConfig::quiet(7).with_forced_crash(p - 1, 2)),
                |ctx| {
                    let g = DistGraph::build_replicated(
                        ctx,
                        &edges,
                        PartitionStrategy::EdgeList,
                        GraphConfig::default(),
                    );
                    let cfg = TraversalConfig::default().with_threads(4);
                    let mut q = VisitorQueue::<Flood>::new(ctx, &g, cfg);
                    if g.is_master(VertexId(0)) {
                        q.push(Flood { vertex: VertexId(0) });
                    }
                    let spec = crate::checkpoint::CheckpointSpec::default().with_every(8);
                    q.do_traversal_checkpointed(ctx, &spec);
                    let s = q.stats();
                    let marked: u64 = g
                        .local_vertices()
                        .filter(|&v| g.is_master(v) && q.state()[g.local_index(v)].marked)
                        .count() as u64;
                    (
                        ctx.all_reduce_sum(marked),
                        ctx.all_reduce_sum(s.crashes),
                        ctx.all_reduce_sum(s.restores),
                    )
                },
            );
            let (marked, crashes, restores) = out[0];
            assert_eq!(marked, 64, "threads=4 resumed flood reaches whole ring (p={p})");
            assert_eq!(crashes, 1, "p={p}");
            assert_eq!(restores, p as u64, "p={p}");
        }
    }

    #[test]
    fn empty_traversal_terminates() {
        let edges = ring_edges(8);
        CommWorld::run(3, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let mut q = VisitorQueue::<Flood>::new(ctx, &g, TraversalConfig::default());
            q.do_traversal(); // nothing pushed: must still terminate
            assert_eq!(q.stats().visitors_executed, 0);
        });
    }
}
