//! Batched multi-source traversal (MS-BFS style).
//!
//! The engine so far runs one traversal per [`VisitorQueue::do_traversal`]
//! call; the production workload the paper targets is thousands of
//! concurrent queries. The standard remedy (Buluç–Madduri style batching)
//! multiplexes up to [`MAX_BATCH`] searches through one shared traversal:
//! per-vertex state widens to one payload slot *per query* and every
//! visitor carries an `active_mask: u64` naming the queries it advances,
//! so a single edge scan serves every query whose frontier crosses that
//! vertex at the same depth. On scale-free graphs with their tiny
//! diameters, a vertex is popped at most once per *distinct depth* in the
//! batch instead of once per query — the amortization that makes batched
//! Graph500 key sweeps several times cheaper than the sequential loop.
//!
//! The mask rides inside the visitor payload through the existing
//! [`WireCodec`]/CRC frame plane unchanged, and it doubles as the
//! associative [`Visitor::merge`] hook: per-query slots merge element-wise
//! with the same monotone min the single-source visitor uses, so the
//! intra-rank worker pool (DESIGN.md §11) runs batched visitors with no
//! new synchronization. Checkpoint/restart works verbatim because the
//! widened per-vertex state is still a fixed-size `WireCodec` record.
//!
//! Three layers live here:
//! - the batched visitors ([`BatchBfsVisitor`], [`BatchReachVisitor`]) and
//!   their engine entry points ([`bfs_batch`], [`reach_batch`]);
//! - [`QueryBatch`]: admission up to a capacity, then one batched run,
//!   dispatching to a compile-time state width;
//! - [`AdmissionQueue`]: the pure event-clock scheduler the `qps_serve`
//!   bench drives with measured batch durations (offered load in, p50/p99
//!   latency out).

use std::cmp::Ordering;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

use havoq_comm::{RankCtx, WireCodec};
use havoq_graph::dist::DistGraph;
use havoq_graph::types::VertexId;

use crate::algorithms::bfs::{BfsData, UNREACHED};
use crate::checkpoint::CheckpointSpec;
use crate::queue::{TraversalConfig, TraversalStats, VisitorQueue};
use crate::visitor::{Role, Visitor, VisitorPush};

/// Maximum number of queries one batch can multiplex: one bit of the
/// visitor's `active_mask` per query.
pub const MAX_BATCH: usize = 64;

// --- per-query execution ledger ------------------------------------------

/// Rank-local per-query visitor counters, shared by every batched BFS
/// visitor on a rank through the queue's decode context (the same
/// rank-replicated-state idiom as subset triangle counting: the `Arc`
/// never crosses the wire, it is reattached when a visitor is decoded).
///
/// `executed[q]`/`pushed[q]` count, for query `q`, the visitor executions
/// that advanced `q`'s frontier and the follow-on visitors they pushed on
/// `q`'s behalf. The totals are incremented on the same code path with the
/// popcount of the live mask, so `Σ_q executed[q] == executed_total` (and
/// likewise for pushes) holds unconditionally — across worker threads,
/// fault injection, and crash/restore replay — which is exactly the
/// invariant the property tests pin down.
#[derive(Debug)]
pub struct LedgerCells {
    executed: [AtomicU64; MAX_BATCH],
    pushed: [AtomicU64; MAX_BATCH],
    executed_total: AtomicU64,
    pushed_total: AtomicU64,
    /// Queries this rank has stopped working for (cancelled, expired, or
    /// aborted by the lifecycle engine, DESIGN.md §15). A set bit gates
    /// the query out of every future `visit` live mask; setting it is
    /// idempotent, so duplicated or retransmitted cancel records are
    /// harmless.
    retired: AtomicU64,
}

impl Default for LedgerCells {
    fn default() -> Self {
        Self {
            executed: std::array::from_fn(|_| AtomicU64::new(0)),
            pushed: std::array::from_fn(|_| AtomicU64::new(0)),
            executed_total: AtomicU64::new(0),
            pushed_total: AtomicU64::new(0),
            retired: AtomicU64::new(0),
        }
    }
}

impl LedgerCells {
    fn record_executed(&self, live: u64) {
        let mut m = live;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            m &= m - 1;
            self.executed[q].fetch_add(1, Relaxed);
        }
        self.executed_total.fetch_add(live.count_ones() as u64, Relaxed);
    }

    fn record_pushed(&self, live: u64, per_query: u64) {
        let mut m = live;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            m &= m - 1;
            self.pushed[q].fetch_add(per_query, Relaxed);
        }
        self.pushed_total.fetch_add(per_query * live.count_ones() as u64, Relaxed);
    }

    /// Retire the queries in `mask`: no future `visit` on this rank will
    /// expand for them. OR-idempotent, so repeated application (duplicate
    /// cancels, retransmits) changes nothing.
    pub fn retire(&self, mask: u64) {
        self.retired.fetch_or(mask, Relaxed);
    }

    /// The current retired-query mask.
    pub fn retired_mask(&self) -> u64 {
        self.retired.load(Relaxed)
    }

    /// Plain-data snapshot (quiescent reads: take it after `do_traversal`).
    pub fn snapshot(&self) -> BatchLedger {
        let read = |a: &[AtomicU64; MAX_BATCH]| {
            let mut out = [0u64; MAX_BATCH];
            for (o, c) in out.iter_mut().zip(a.iter()) {
                *o = c.load(Relaxed);
            }
            out
        };
        BatchLedger {
            executed: read(&self.executed),
            pushed: read(&self.pushed),
            executed_total: self.executed_total.load(Relaxed),
            pushed_total: self.pushed_total.load(Relaxed),
        }
    }
}

/// Quiescent snapshot of a rank's [`LedgerCells`].
#[derive(Clone, Copy, Debug)]
pub struct BatchLedger {
    pub executed: [u64; MAX_BATCH],
    pub pushed: [u64; MAX_BATCH],
    pub executed_total: u64,
    pub pushed_total: u64,
}

impl BatchLedger {
    /// The structural ledger invariant: per-query counters sum to the
    /// batch totals, and no bit at or above `width` was ever attributed.
    pub fn check(&self, width: usize) -> Result<(), String> {
        let se: u64 = self.executed.iter().sum();
        let sp: u64 = self.pushed.iter().sum();
        if se != self.executed_total {
            return Err(format!("executed sum {se} != total {}", self.executed_total));
        }
        if sp != self.pushed_total {
            return Err(format!("pushed sum {sp} != total {}", self.pushed_total));
        }
        for q in width..MAX_BATCH {
            if self.executed[q] != 0 || self.pushed[q] != 0 {
                return Err(format!("query slot {q} >= width {width} has counts"));
            }
        }
        Ok(())
    }
}

// --- batched BFS ----------------------------------------------------------

/// Per-vertex state for a batch of up to `K` BFS queries: the
/// single-source `(length, parent)` pair, widened to one slot per query,
/// plus one *expansion bit* per query.
///
/// Bit `q` of `expanded` means "query `q` has already scanned this
/// vertex's adjacency at its current best `length[q]`"; an improvement
/// clears the bit. Without it, every improving arrival would re-expand all
/// co-located equal-depth queries (each arrival's `visit` recomputes the
/// live mask from the shared state), amplifying fanout by up to
/// indegree × K; with it, each query expands each vertex exactly once per
/// achieved depth — the same pop-once-per-depth property strictly-less
/// `pre_visit` gives single-source BFS.
///
/// `Default` is written out by hand because the derived impl for arrays
/// stops at 32 elements and the headline width is 64.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchBfsData<const K: usize> {
    pub length: [u64; K],
    pub parent: [u64; K],
    pub expanded: u64,
}

impl<const K: usize> Default for BatchBfsData<K> {
    fn default() -> Self {
        Self { length: [UNREACHED; K], parent: [UNREACHED; K], expanded: 0 }
    }
}

impl<const K: usize> BatchBfsData<K> {
    /// Query `q`'s view of this vertex, as single-source state.
    pub fn query(&self, q: usize) -> BfsData {
        BfsData { length: self.length[q], parent: self.parent[q] }
    }
}

impl<const K: usize> WireCodec for BatchBfsData<K> {
    const WIRE_SIZE: usize = 16 * K + 8;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        for q in 0..K {
            self.length[q].encode(&mut buf[q * 8..q * 8 + 8]);
            self.parent[q].encode(&mut buf[(K + q) * 8..(K + q) * 8 + 8]);
        }
        // checkpointed too, so a restored rank does not re-expand already
        // scanned frontiers
        self.expanded.encode(&mut buf[16 * K..16 * K + 8]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        let mut d = Self::default();
        for q in 0..K {
            d.length[q] = u64::decode(&buf[q * 8..q * 8 + 8], ctx);
            d.parent[q] = u64::decode(&buf[(K + q) * 8..(K + q) * 8 + 8], ctx);
        }
        d.expanded = u64::decode(&buf[16 * K..16 * K + 8], ctx);
        d
    }
}

/// The batched BFS visitor: the single-source visitor plus the query mask.
///
/// All queries named by `mask` reached `vertex` at depth `length` through
/// `parent`, so one wire record and one adjacency scan advance all of
/// them. The wire footprint is a flat 32 bytes regardless of `K`; only the
/// per-vertex *state* widens with the batch.
#[derive(Clone, Debug)]
pub struct BatchBfsVisitor<const K: usize> {
    pub vertex: VertexId,
    pub length: u64,
    pub parent: u64,
    pub mask: u64,
    pub(crate) ledger: Arc<LedgerCells>,
}

impl<const K: usize> WireCodec for BatchBfsVisitor<K> {
    const WIRE_SIZE: usize = 32;
    /// The ledger is rank-replicated, never wire-borne: reattached on
    /// decode exactly like the subset table of subset triangle counting.
    type DecodeCtx = Arc<LedgerCells>;

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.length.encode(&mut buf[8..16]);
        self.parent.encode(&mut buf[16..24]);
        self.mask.encode(&mut buf[24..32]);
    }

    fn decode(buf: &[u8], ctx: &Self::DecodeCtx) -> Self {
        BatchBfsVisitor {
            vertex: VertexId::decode(&buf[..8], &()),
            length: u64::decode(&buf[8..16], &()),
            parent: u64::decode(&buf[16..24], &()),
            mask: u64::decode(&buf[24..32], &()),
            ledger: Arc::clone(ctx),
        }
    }
}

impl<const K: usize> Visitor for BatchBfsVisitor<K> {
    type Data = BatchBfsData<K>;
    /// Per-query monotone min tolerates imprecise filtering exactly like
    /// single-source BFS, so ghosts stay allowed.
    const GHOSTS_ALLOWED: bool = true;

    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    /// The single-source monotone update, applied per mask bit: proceed if
    /// any query in the mask improved. Runs identically on master, replica
    /// and ghost state, so the ghost filter prunes per-query exactly as it
    /// does for single-source BFS.
    fn pre_visit(&self, data: &mut Self::Data, _role: Role) -> bool {
        let mut improved = false;
        let mut m = self.mask;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            m &= m - 1;
            if self.length < data.length[q] {
                data.length[q] = self.length;
                data.parent[q] = self.parent;
                // the new depth has not been expanded yet
                data.expanded &= !(1 << q);
                improved = true;
            }
        }
        improved
    }

    /// Expand once on behalf of every query still best — and not yet
    /// expanded — at this depth: the `live` recomputation scans *all*
    /// query slots, not just this visitor's mask, so co-located
    /// equal-depth queries piggyback on one adjacency scan (Alg. 2
    /// line 13, per bit), and the `expanded` gate makes each (query,
    /// vertex, depth) scan happen exactly once no matter how many
    /// arrivals race to it.
    fn visit(&self, g: &DistGraph, data: &mut Self::Data, out: &mut dyn VisitorPush<Self>) {
        let mut live = 0u64;
        for q in 0..K {
            if self.length == data.length[q] && data.expanded & (1 << q) == 0 {
                live |= 1 << q;
            }
        }
        // retired queries (cancelled / expired / aborted) never expand
        live &= !self.ledger.retired_mask();
        if live == 0 {
            return;
        }
        data.expanded |= live;
        self.ledger.record_executed(live);
        let mut fanout = 0u64;
        g.with_adj(self.vertex, |adj| {
            for &t in adj {
                out.push(BatchBfsVisitor {
                    vertex: VertexId(t),
                    length: self.length + 1,
                    parent: self.vertex.0,
                    mask: live,
                    ledger: Arc::clone(&self.ledger),
                });
                fanout += 1;
            }
        });
        self.ledger.record_pushed(live, fanout);
    }

    #[inline]
    fn priority(&self, other: &Self) -> Ordering {
        self.length.cmp(&other.length)
    }

    /// Element-wise monotone min — the same update as `pre_visit`, so a
    /// stale worker seed merges as a no-op per query. Expansion bits
    /// follow the winning length; at equal lengths they OR, because an
    /// expansion recorded by either side really happened (its pushes are
    /// already queued), and dropping the record would only cost a
    /// harmless duplicate scan, while inventing one would lose a
    /// frontier — so `true` wins only when it is true on some side.
    #[inline]
    fn merge(into: &mut Self::Data, update: &Self::Data) {
        for q in 0..K {
            let bit = 1u64 << q;
            if update.length[q] < into.length[q] {
                into.length[q] = update.length[q];
                into.parent[q] = update.parent[q];
                into.expanded = (into.expanded & !bit) | (update.expanded & bit);
            } else if update.length[q] == into.length[q] {
                into.expanded |= update.expanded & bit;
            }
        }
    }
}

/// Batched traversal configuration (mirrors `BfsConfig`).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchConfig {
    pub traversal: TraversalConfig,
    /// When set, the batched traversal checkpoints at quiescence cuts and
    /// can crash/restore under an injected fault plan, exactly like the
    /// single-source algorithms: the widened state is still a fixed-size
    /// `WireCodec` record.
    pub checkpoint: Option<CheckpointSpec>,
    /// Lifecycle budget (lifecycle engine only, DESIGN.md §15): a query
    /// whose traversal reaches this many level-synchronous rounds expires
    /// with `DeadlineExceeded` at that round's cut. Checked against the
    /// globally agreed round counter, so every rank expires the query at
    /// the same cut — no wall clocks involved.
    pub max_rounds: Option<u64>,
    /// Lifecycle budget: a query whose globally all-reduced edge-push
    /// count exceeds this expires with `DeadlineExceeded` at the cut that
    /// observes the overrun. The all-reduce makes the decision a pure
    /// function of cut-consistent counters, identical on every rank.
    pub max_inspected: Option<u64>,
    /// Lifecycle watchdog: abort the whole traversal (outcome `Aborted`
    /// for every still-live query) once the quiescence detector sees this
    /// many consecutive stable-but-unbalanced waves — the signature of a
    /// receiver that will never drain (e.g. a hard-stalled rank). Keep it
    /// in the thousands so transient chaos (bounded stalls, retransmit
    /// round trips) can never trip it; a true wedge still aborts promptly
    /// because idle waves complete in microseconds.
    pub watchdog_waves: Option<u64>,
}

impl BatchConfig {
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.traversal.threads = threads;
        self
    }

    pub fn with_checkpoint(mut self, spec: CheckpointSpec) -> Self {
        self.checkpoint = Some(spec);
        self
    }

    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    pub fn with_max_inspected(mut self, edges: u64) -> Self {
        self.max_inspected = Some(edges);
        self
    }

    pub fn with_watchdog(mut self, waves: u64) -> Self {
        self.watchdog_waves = Some(waves);
        self
    }
}

/// Per-query aggregates of one batched BFS run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryAggregates {
    /// Global number of vertices this query reached (including its source).
    pub visited_count: u64,
    /// Global sum of whole-adjacency degrees of this query's reached
    /// vertices — the same TEPS numerator the sequential loop reports.
    pub traversed_edges: u64,
    /// This query's deepest BFS level.
    pub max_level: u64,
}

/// Result of one batched BFS run (per rank).
#[derive(Clone, Debug)]
pub struct BatchBfsResult {
    /// Per-query global aggregates, index-aligned with the sources slice.
    pub per_query: Vec<QueryAggregates>,
    /// Per-query single-source view of this rank's local state
    /// (`[query][local vertex index]`), bit-compatible with what `bfs`
    /// leaves behind — the equivalence belt and `validate_bfs` consume it
    /// directly.
    pub local_state: Vec<Vec<BfsData>>,
    /// Wall-clock of the batched traversal phase on this rank.
    pub elapsed: Duration,
    /// This rank's queue statistics for the single shared traversal.
    pub stats: TraversalStats,
    /// This rank's per-query execution ledger snapshot.
    pub ledger: BatchLedger,
}

/// Run up to `K` BFS queries through one shared traversal. Collective.
///
/// `sources.len()` must be ≤ `K` ≤ [`MAX_BATCH`]; unused slots simply stay
/// `UNREACHED` everywhere. Per-query *levels* are bit-identical to `K`
/// sequential [`crate::algorithms::bfs::bfs`] runs (levels are the
/// schedule-independent fixed point of the monotone update); parents are
/// one valid shortest-path tree per query, as in the single-source run.
pub fn bfs_batch<const K: usize>(
    ctx: &RankCtx,
    g: &DistGraph,
    sources: &[VertexId],
    cfg: &BatchConfig,
) -> BatchBfsResult {
    assert!(K <= MAX_BATCH, "batch width {K} exceeds MAX_BATCH {MAX_BATCH}");
    assert!(sources.len() <= K, "{} sources exceed batch width {K}", sources.len());
    let ledger = Arc::new(LedgerCells::default());
    let mut q = VisitorQueue::<BatchBfsVisitor<K>>::new_with_ctx(
        ctx,
        g,
        cfg.traversal,
        Arc::clone(&ledger),
    );
    for (qi, &s) in sources.iter().enumerate() {
        if g.is_master(s) {
            q.push(BatchBfsVisitor {
                vertex: s,
                length: 0,
                parent: s.0,
                mask: 1u64 << qi,
                ledger: Arc::clone(&ledger),
            });
        }
    }
    match &cfg.checkpoint {
        Some(spec) => q.do_traversal_checkpointed(ctx, spec),
        None => q.do_traversal(),
    }

    // per-query aggregates over masters only (replica state is a copy)
    let mut visited = vec![0u64; sources.len()];
    let mut traversed = vec![0u64; sources.len()];
    let mut deepest = vec![0u64; sources.len()];
    for v in g.local_vertices() {
        if !g.is_master(v) {
            continue;
        }
        let d = &q.state()[g.local_index(v)];
        let deg = g.total_degree(v);
        for qi in 0..sources.len() {
            if d.length[qi] != UNREACHED {
                visited[qi] += 1;
                traversed[qi] += deg;
                deepest[qi] = deepest[qi].max(d.length[qi]);
            }
        }
    }
    let per_query = (0..sources.len())
        .map(|qi| QueryAggregates {
            visited_count: ctx.all_reduce_sum(visited[qi]),
            traversed_edges: ctx.all_reduce_sum(traversed[qi]),
            max_level: ctx.all_reduce_max(deepest[qi]),
        })
        .collect();

    let stats = q.stats();
    let state = q.into_state();
    let local_state =
        (0..sources.len()).map(|qi| state.iter().map(|d| d.query(qi)).collect()).collect();
    BatchBfsResult {
        per_query,
        local_state,
        elapsed: stats.elapsed,
        stats,
        ledger: ledger.snapshot(),
    }
}

// --- batched reachability -------------------------------------------------

/// Per-vertex state for up to 64 reachability queries: which queries have
/// reached this vertex, and which of those this vertex has already
/// expanded for. Two machine words regardless of the batch width.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReachData {
    pub reached: u64,
    pub expanded: u64,
}

impl WireCodec for ReachData {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.reached.encode(&mut buf[..8]);
        self.expanded.encode(&mut buf[8..16]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        ReachData { reached: u64::decode(&buf[..8], ctx), expanded: u64::decode(&buf[8..16], ctx) }
    }
}

/// Batched reachability visitor: pure mask propagation (no per-query
/// payload at all), the minimal demonstration that the `active_mask` is
/// all the batching layer needs.
#[derive(Clone, Copy, Debug)]
pub struct BatchReachVisitor {
    pub vertex: VertexId,
    pub mask: u64,
}

impl WireCodec for BatchReachVisitor {
    const WIRE_SIZE: usize = 16;
    type DecodeCtx = ();

    fn encode(&self, buf: &mut [u8]) {
        self.vertex.encode(&mut buf[..8]);
        self.mask.encode(&mut buf[8..16]);
    }

    fn decode(buf: &[u8], ctx: &()) -> Self {
        BatchReachVisitor {
            vertex: VertexId::decode(&buf[..8], ctx),
            mask: u64::decode(&buf[8..16], ctx),
        }
    }
}

impl Visitor for BatchReachVisitor {
    type Data = ReachData;
    /// Monotone bit-OR: imprecise ghost filtering is safe.
    const GHOSTS_ALLOWED: bool = true;

    #[inline]
    fn vertex(&self) -> VertexId {
        self.vertex
    }

    #[inline]
    fn pre_visit(&self, data: &mut ReachData, _role: Role) -> bool {
        let new = self.mask & !data.reached;
        data.reached |= new;
        new != 0
    }

    /// Expand every query that reached this vertex but has not been
    /// expanded here yet. Under the worker pool this runs on a seed copy
    /// and concurrent executions may both claim overlapping `todo` masks —
    /// the duplicate pushes are idempotent under the monotone OR, and the
    /// OR-merge below keeps `expanded` exact.
    fn visit(&self, g: &DistGraph, data: &mut ReachData, out: &mut dyn VisitorPush<Self>) {
        let todo = data.reached & !data.expanded;
        if todo == 0 {
            return;
        }
        data.expanded |= todo;
        g.with_adj(self.vertex, |adj| {
            for &t in adj {
                out.push(BatchReachVisitor { vertex: VertexId(t), mask: todo });
            }
        });
    }

    #[inline]
    fn priority(&self, _other: &Self) -> Ordering {
        Ordering::Equal // framework falls back to vertex id (page locality)
    }

    #[inline]
    fn merge(into: &mut ReachData, update: &ReachData) {
        into.reached |= update.reached;
        into.expanded |= update.expanded;
    }
}

/// Result of one batched reachability run (per rank).
#[derive(Clone, Debug)]
pub struct BatchReachResult {
    /// Per-query global count of reached vertices (including the source).
    pub reached_counts: Vec<u64>,
    /// This rank's local reach masks, indexed by local vertex index.
    pub local_masks: Vec<u64>,
    /// Wall-clock of the traversal phase on this rank.
    pub elapsed: Duration,
    /// This rank's queue statistics.
    pub stats: TraversalStats,
}

/// Run up to [`MAX_BATCH`] reachability queries through one shared
/// traversal. Collective. The reach width is runtime-sized (state is two
/// words regardless), so no const parameter is needed.
pub fn reach_batch(
    ctx: &RankCtx,
    g: &DistGraph,
    sources: &[VertexId],
    cfg: &BatchConfig,
) -> BatchReachResult {
    assert!(sources.len() <= MAX_BATCH, "{} sources exceed MAX_BATCH {MAX_BATCH}", sources.len());
    let mut q = VisitorQueue::<BatchReachVisitor>::new(ctx, g, cfg.traversal);
    for (qi, &s) in sources.iter().enumerate() {
        if g.is_master(s) {
            q.push(BatchReachVisitor { vertex: s, mask: 1u64 << qi });
        }
    }
    match &cfg.checkpoint {
        Some(spec) => q.do_traversal_checkpointed(ctx, spec),
        None => q.do_traversal(),
    }

    let mut counts = vec![0u64; sources.len()];
    for v in g.local_vertices() {
        if !g.is_master(v) {
            continue;
        }
        let d = &q.state()[g.local_index(v)];
        for (qi, c) in counts.iter_mut().enumerate() {
            if d.reached & (1u64 << qi) != 0 {
                *c += 1;
            }
        }
    }
    let reached_counts = counts.into_iter().map(|c| ctx.all_reduce_sum(c)).collect();
    let stats = q.stats();
    let local_masks = q.into_state().iter().map(|d| d.reached).collect();
    BatchReachResult { reached_counts, local_masks, elapsed: stats.elapsed, stats }
}

// --- the QueryBatch scheduler ---------------------------------------------

/// Error returned when a batch is at capacity (admission control).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchFull;

impl std::fmt::Display for BatchFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "query batch is at capacity")
    }
}

/// A batch of admitted queries, run as one shared traversal.
///
/// Admission is capacity-bounded ([`QueryBatch::try_admit`]); `run_bfs`
/// drains the batch through [`bfs_batch`], dispatching to the narrowest
/// compile-time state width that fits the admitted count so small batches
/// don't pay for 64-wide per-vertex state.
#[derive(Clone, Debug)]
pub struct QueryBatch {
    sources: Vec<VertexId>,
    capacity: usize,
}

impl QueryBatch {
    /// A new empty batch with the given capacity (clamped to
    /// [`MAX_BATCH`]; zero is rounded up to one).
    pub fn new(capacity: usize) -> Self {
        Self { sources: Vec::new(), capacity: capacity.clamp(1, MAX_BATCH) }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.sources.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    pub fn is_full(&self) -> bool {
        self.sources.len() >= self.capacity
    }

    pub fn sources(&self) -> &[VertexId] {
        &self.sources
    }

    /// Admit one query; returns its slot index, or [`BatchFull`] when the
    /// batch is at capacity and the caller must wait for the next batch.
    ///
    /// Duplicate sources are deliberately *not* deduplicated: two queries
    /// on the same key are two independent queries. Each gets its own
    /// batch slot, its own mask bit, its own ledger entry and its own
    /// per-query result — the mask plane multiplexes them through one
    /// traversal exactly as it does distinct sources, so a duplicate
    /// costs one state bit, not a second traversal. Deduplication, if
    /// wanted, belongs in a caller-side cache keyed on (source, epoch),
    /// not in admission, where it would silently merge queries with
    /// different deadlines or owners.
    pub fn try_admit(&mut self, source: VertexId) -> Result<usize, BatchFull> {
        if self.is_full() {
            return Err(BatchFull);
        }
        self.sources.push(source);
        Ok(self.sources.len() - 1)
    }

    /// Run the admitted queries as one batched BFS and drain the batch.
    /// Collective: every rank must hold the same admitted sources (in a
    /// distributed serving loop, admission decisions are driven by
    /// world-agreed clocks — see the `qps_serve` bench).
    pub fn run_bfs(&mut self, ctx: &RankCtx, g: &DistGraph, cfg: &BatchConfig) -> BatchBfsResult {
        let sources = std::mem::take(&mut self.sources);
        match sources.len() {
            0..=2 => bfs_batch::<2>(ctx, g, &sources, cfg),
            3..=8 => bfs_batch::<8>(ctx, g, &sources, cfg),
            9..=16 => bfs_batch::<16>(ctx, g, &sources, cfg),
            _ => bfs_batch::<64>(ctx, g, &sources, cfg),
        }
    }

    /// Run the admitted queries as one batched reachability and drain.
    pub fn run_reach(
        &mut self,
        ctx: &RankCtx,
        g: &DistGraph,
        cfg: &BatchConfig,
    ) -> BatchReachResult {
        let sources = std::mem::take(&mut self.sources);
        reach_batch(ctx, g, &sources, cfg)
    }
}

// --- admission queue (offered-load scheduler) -----------------------------

/// One query arrival in the serving simulation: when it arrived (on the
/// virtual clock), what it asks for, and by when it must *start* service
/// to still be useful (`u64::MAX` = no deadline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Arrival {
    pub at_ns: u64,
    pub source: VertexId,
    /// Absolute event-clock deadline: if the queue cannot admit the query
    /// before this instant, serving it is wasted work and the scheduler
    /// sheds it instead ([`QueryOutcome::Shed`](crate::lifecycle::QueryOutcome)).
    pub deadline_ns: u64,
}

impl Arrival {
    /// An arrival with no deadline.
    pub fn new(at_ns: u64, source: VertexId) -> Self {
        Self { at_ns, source, deadline_ns: u64::MAX }
    }

    /// Set an absolute start-of-service deadline on the event clock.
    pub fn with_deadline(mut self, deadline_ns: u64) -> Self {
        self.deadline_ns = deadline_ns;
        self
    }
}

/// What to do with new work when the pending queue is at its backlog
/// bound.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Refuse the newest arrival (classic bounded queue; protects queries
    /// already waiting, so no admitted query is ever betrayed).
    #[default]
    RejectNew,
    /// Drop the oldest pending arrival to make room (freshest-first;
    /// right when stale answers are worthless, e.g. deadline-heavy
    /// traffic — the oldest entry is the most likely to be dead on
    /// admission anyway).
    DropOldest,
}

/// The pure event-clock scheduler behind the `qps_serve` bench.
///
/// Queries arrive on a virtual nanosecond clock; batches are formed FIFO
/// up to `capacity` (the admission control: later arrivals wait for the
/// next batch), served for a *measured* duration fed back by the caller,
/// and per-query latency is completion minus arrival. The scheduler holds
/// no wall-clock state of its own, so multi-rank drivers can feed it a
/// world-agreed duration (`all_reduce_max` of the measured nanos) and
/// every rank makes identical admission decisions.
///
/// Overload protection is opt-in and two-pronged:
/// - [`AdmissionQueue::with_max_backlog`] bounds the pending queue; at
///   the bound, the configured [`ShedPolicy`] sheds either the newest
///   offer or the oldest waiter. A bounded backlog is what turns an
///   overload from an unbounded latency ramp into a bounded-latency,
///   partial-goodput regime: with backlog ≤ B and batch capacity C, no
///   admitted query ever waits more than ⌈B/C⌉ + 1 batch services.
/// - Deadline-aware admission: an arrival whose `deadline_ns` has passed
///   when a batch forms is dead on admission — serving it is pure waste,
///   so it is shed instead.
///
/// Shed queries never contribute latency samples (they have no service
/// completion); they are accounted in [`AdmissionQueue::shed_overflow`]
/// and [`AdmissionQueue::shed_expired`].
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    capacity: usize,
    max_backlog: Option<usize>,
    shed_policy: ShedPolicy,
    clock_ns: u64,
    pending: VecDeque<Arrival>,
    in_flight: Vec<Arrival>,
    latencies_ns: Vec<u64>,
    peak_backlog: usize,
    shed_overflow: u64,
    shed_expired: u64,
    offered: u64,
}

impl AdmissionQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.clamp(1, MAX_BATCH),
            max_backlog: None,
            shed_policy: ShedPolicy::default(),
            clock_ns: 0,
            pending: VecDeque::new(),
            in_flight: Vec::new(),
            latencies_ns: Vec::new(),
            peak_backlog: 0,
            shed_overflow: 0,
            shed_expired: 0,
            offered: 0,
        }
    }

    /// Bound the pending queue to `n` waiters (clamped to at least 1);
    /// beyond it, the shed policy decides who is dropped.
    pub fn with_max_backlog(mut self, n: usize) -> Self {
        self.max_backlog = Some(n.max(1));
        self
    }

    /// Choose who is shed at the backlog bound (default
    /// [`ShedPolicy::RejectNew`]).
    pub fn with_shed_policy(mut self, policy: ShedPolicy) -> Self {
        self.shed_policy = policy;
        self
    }

    /// Enqueue one arrival. Arrival timestamps must be non-decreasing.
    /// Returns `false` iff the arrival (or, under
    /// [`ShedPolicy::DropOldest`], a previously pending one) was shed at
    /// the backlog bound.
    pub fn offer(&mut self, a: Arrival) -> bool {
        if let Some(last) = self.pending.back() {
            assert!(a.at_ns >= last.at_ns, "arrivals must be offered in time order");
        }
        self.offered += 1;
        if self.max_backlog.is_some_and(|b| self.pending.len() >= b) {
            self.shed_overflow += 1;
            match self.shed_policy {
                ShedPolicy::RejectNew => return false,
                ShedPolicy::DropOldest => {
                    self.pending.pop_front();
                }
            }
        }
        self.pending.push_back(a);
        self.peak_backlog = self.peak_backlog.max(self.pending.len());
        true
    }

    /// Form the next batch: advance the clock to the first pending arrival
    /// if the server is idle, shed every waiter whose deadline has already
    /// passed, then admit (FIFO) every arrival already in the past, up to
    /// capacity. Returns the admitted queries (empty iff nothing is
    /// pending or everything pending expired).
    pub fn start_batch(&mut self) -> &[Arrival] {
        assert!(self.in_flight.is_empty(), "previous batch not finished");
        if let Some(first) = self.pending.front() {
            self.clock_ns = self.clock_ns.max(first.at_ns);
        }
        while self.in_flight.len() < self.capacity {
            match self.pending.front() {
                Some(a) if a.at_ns <= self.clock_ns => {
                    let a = self.pending.pop_front().unwrap();
                    if a.deadline_ns <= self.clock_ns {
                        self.shed_expired += 1;
                    } else {
                        self.in_flight.push(a);
                    }
                }
                _ => break,
            }
        }
        &self.in_flight
    }

    /// Complete the in-flight batch after `service_ns` of service time:
    /// the clock advances and every admitted query's latency (queue wait +
    /// service) is recorded.
    pub fn finish_batch(&mut self, service_ns: u64) {
        self.clock_ns += service_ns;
        for a in self.in_flight.drain(..) {
            self.latencies_ns.push(self.clock_ns - a.at_ns);
        }
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    pub fn peak_backlog(&self) -> usize {
        self.peak_backlog
    }

    /// Arrivals shed at the backlog bound (whichever side the policy
    /// dropped).
    pub fn shed_overflow(&self) -> u64 {
        self.shed_overflow
    }

    /// Arrivals shed at batch formation because their deadline had
    /// already passed.
    pub fn shed_expired(&self) -> u64 {
        self.shed_expired
    }

    pub fn shed_total(&self) -> u64 {
        self.shed_overflow + self.shed_expired
    }

    /// Every arrival ever offered (served + shed + still pending).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }

    /// Recorded per-query latencies, in completion order.
    pub fn latencies_ns(&self) -> &[u64] {
        &self.latencies_ns
    }
}

/// The `p`-th percentile (0..=100) of a latency population, by
/// nearest-rank on a sorted copy. Returns 0 on an empty population.
pub fn percentile_ns(latencies: &[u64], p: usize) -> u64 {
    if latencies.is_empty() {
        return 0;
    }
    let mut sorted = latencies.to_vec();
    sorted.sort_unstable();
    let rank = (p * sorted.len()).div_ceil(100).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr(at_ns: u64, v: u64) -> Arrival {
        Arrival::new(at_ns, VertexId(v))
    }

    #[test]
    fn admission_respects_capacity_and_fifo() {
        let mut aq = AdmissionQueue::new(2);
        for i in 0..5 {
            aq.offer(arr(i * 10, i));
        }
        let b1: Vec<u64> = aq.start_batch().iter().map(|a| a.source.0).collect();
        // clock advanced to the first arrival (t=0); only it is in the past
        assert_eq!(b1, vec![0]);
        aq.finish_batch(100); // clock = 100: arrivals 1..=4 are now waiting
        let b2: Vec<u64> = aq.start_batch().iter().map(|a| a.source.0).collect();
        assert_eq!(b2, vec![1, 2], "capacity 2, FIFO order");
        aq.finish_batch(100); // clock = 200
        let b3: Vec<u64> = aq.start_batch().iter().map(|a| a.source.0).collect();
        assert_eq!(b3, vec![3, 4]);
        aq.finish_batch(100);
        assert_eq!(aq.pending_len(), 0);
        assert_eq!(aq.peak_backlog(), 5);
    }

    #[test]
    fn latency_is_queue_wait_plus_service() {
        let mut aq = AdmissionQueue::new(1);
        aq.offer(arr(0, 0));
        aq.offer(arr(5, 1));
        aq.start_batch();
        aq.finish_batch(100); // q0: arrived 0, done 100 -> 100
        aq.start_batch();
        aq.finish_batch(50); // q1: arrived 5, done 150 -> 145
        assert_eq!(aq.latencies_ns(), &[100, 145]);
    }

    #[test]
    fn idle_server_advances_clock_to_next_arrival() {
        let mut aq = AdmissionQueue::new(4);
        aq.offer(arr(1_000, 7));
        let b: Vec<u64> = aq.start_batch().iter().map(|a| a.source.0).collect();
        assert_eq!(b, vec![7]);
        aq.finish_batch(10);
        assert_eq!(aq.clock_ns(), 1_010, "no latency charged for idle time");
        assert_eq!(aq.latencies_ns(), &[10]);
    }

    #[test]
    fn empty_batch_when_nothing_pending() {
        let mut aq = AdmissionQueue::new(4);
        assert!(aq.start_batch().is_empty());
        aq.finish_batch(0);
        assert_eq!(aq.latencies_ns(), &[] as &[u64]);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let lats: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&lats, 50), 50);
        assert_eq!(percentile_ns(&lats, 99), 99);
        assert_eq!(percentile_ns(&lats, 100), 100);
        assert_eq!(percentile_ns(&[42], 99), 42);
        assert_eq!(percentile_ns(&[], 50), 0);
    }

    /// Boundary ranks: the rank clamp must keep p=0 on the minimum (rank
    /// 1, not a 0 index underflow), p=100 on the maximum, and a single
    /// sample must answer every percentile with itself.
    #[test]
    fn percentile_boundary_ranks() {
        let lats: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&lats, 0), 1, "p=0 is the population minimum");
        assert_eq!(percentile_ns(&lats, 1), 1);
        assert_eq!(percentile_ns(&lats, 100), 100, "p=100 is the population maximum");
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(percentile_ns(&[7], p), 7, "single sample answers p={p}");
        }
        assert_eq!(percentile_ns(&[], 0), 0);
        assert_eq!(percentile_ns(&[], 100), 0);
        // unsorted input: percentile works on a sorted copy
        assert_eq!(percentile_ns(&[30, 10, 20], 0), 10);
        assert_eq!(percentile_ns(&[30, 10, 20], 100), 30);
    }

    #[test]
    fn query_batch_admission_control() {
        let mut b = QueryBatch::new(2);
        assert_eq!(b.try_admit(VertexId(1)), Ok(0));
        assert_eq!(b.try_admit(VertexId(2)), Ok(1));
        assert!(b.is_full());
        assert_eq!(b.try_admit(VertexId(3)), Err(BatchFull));
        assert_eq!(b.sources(), &[VertexId(1), VertexId(2)]);
    }

    /// Two queries on the same source key are two independent queries:
    /// distinct slots at admission, and after a run, per-query aggregates
    /// and ledger entries that are each complete on their own (not split
    /// between the twins).
    #[test]
    fn duplicate_sources_are_independent_queries() {
        let mut b = QueryBatch::new(4);
        assert_eq!(b.try_admit(VertexId(5)), Ok(0));
        assert_eq!(b.try_admit(VertexId(5)), Ok(1), "duplicate gets its own slot");
        assert_eq!(b.sources(), &[VertexId(5), VertexId(5)]);

        use havoq_comm::CommWorld;
        use havoq_graph::csr::GraphConfig;
        use havoq_graph::dist::PartitionStrategy;
        use havoq_graph::gen::rmat::RmatGenerator;
        let gen = RmatGenerator::graph500(7);
        let edges = gen.symmetric_edges(13);
        let out = CommWorld::run(2, move |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let mut b = QueryBatch::new(4);
            b.try_admit(VertexId(5)).unwrap();
            b.try_admit(VertexId(5)).unwrap();
            b.run_bfs(ctx, &g, &BatchConfig::default())
        });
        for res in out {
            res.ledger.check(2).unwrap();
            let (a, b) = (&res.per_query[0], &res.per_query[1]);
            assert_eq!(a.visited_count, b.visited_count, "twins answer identically");
            assert_eq!(a.traversed_edges, b.traversed_edges);
            assert_eq!(a.max_level, b.max_level);
            assert!(a.visited_count > 1, "vertex 5 reaches the RMAT core");
            // each twin's ledger entry is a full traversal's worth of work,
            // not half of one: executed counts must match exactly (the mask
            // plane drives both bits through the same visitor executions)
            assert_eq!(res.ledger.executed[0], res.ledger.executed[1]);
            assert_eq!(res.ledger.pushed[0], res.ledger.pushed[1]);
            assert!(res.ledger.executed[0] > 0);
            // and the per-vertex states agree bit for bit
            let l0: Vec<u64> = res.local_state[0].iter().map(|d| d.length).collect();
            let l1: Vec<u64> = res.local_state[1].iter().map(|d| d.length).collect();
            assert_eq!(l0, l1, "twin level arrays identical");
        }
    }

    #[test]
    fn backlog_bound_reject_new_sheds_the_offer() {
        let mut aq = AdmissionQueue::new(2).with_max_backlog(2);
        assert!(aq.offer(arr(0, 0)));
        assert!(aq.offer(arr(0, 1)));
        assert!(!aq.offer(arr(0, 2)), "third offer bounces off the bound");
        assert_eq!(aq.shed_overflow(), 1);
        assert_eq!(aq.pending_len(), 2);
        aq.start_batch();
        aq.finish_batch(10);
        // both survivors served; the shed offer never shows up in latency
        assert_eq!(aq.latencies_ns().len(), 2);
        assert_eq!(aq.offered(), 3);
        assert_eq!(aq.shed_total(), 1);
    }

    #[test]
    fn backlog_bound_drop_oldest_prefers_fresh_work() {
        let mut aq =
            AdmissionQueue::new(2).with_max_backlog(2).with_shed_policy(ShedPolicy::DropOldest);
        assert!(aq.offer(arr(0, 0)));
        assert!(aq.offer(arr(0, 1)));
        assert!(aq.offer(arr(0, 2)), "newest survives by evicting the oldest");
        assert_eq!(aq.shed_overflow(), 1);
        let b: Vec<u64> = aq.start_batch().iter().map(|a| a.source.0).collect();
        assert_eq!(b, vec![1, 2], "arrival 0 was evicted");
    }

    #[test]
    fn expired_deadlines_are_shed_at_batch_formation() {
        let mut aq = AdmissionQueue::new(4);
        aq.offer(arr(0, 0)); // no deadline: always served
        aq.offer(arr(0, 1).with_deadline(50)); // dead once the clock passes 50
        aq.offer(arr(0, 2).with_deadline(10_000)); // alive
        aq.start_batch();
        aq.finish_batch(100); // clock = 100
        aq.offer(arr(100, 3).with_deadline(90)); // already dead on arrival
        let b: Vec<u64> = aq.start_batch().iter().map(|a| a.source.0).collect();
        assert_eq!(b, Vec::<u64>::new(), "the only waiter was past its deadline");
        // first batch served all three (clock was 0 ≤ both deadlines);
        // the late-offered expired one was shed at formation
        assert_eq!(aq.shed_expired(), 1);
        assert_eq!(aq.latencies_ns().len(), 3);
    }

    /// A deadline that expires while waiting (not only on arrival): the
    /// query was alive when offered, but the clock passed its deadline
    /// before a batch slot opened.
    #[test]
    fn deadline_expires_while_queued() {
        let mut aq = AdmissionQueue::new(1);
        aq.offer(arr(0, 0));
        aq.offer(arr(1, 1).with_deadline(50));
        aq.start_batch(); // serves query 0
        aq.finish_batch(100); // clock = 100 > 50
        let b: Vec<u64> = aq.start_batch().iter().map(|a| a.source.0).collect();
        assert!(b.is_empty());
        assert_eq!(aq.shed_expired(), 1);
        assert_eq!(aq.latencies_ns().len(), 1);
    }

    #[test]
    fn batch_data_codec_roundtrip() {
        let mut d = BatchBfsData::<8>::default();
        d.length[0] = 3;
        d.parent[0] = 17;
        d.length[7] = 0;
        d.parent[7] = 7;
        d.expanded = 0b1000_0001;
        let mut buf = vec![0u8; BatchBfsData::<8>::WIRE_SIZE];
        d.encode(&mut buf);
        let back = BatchBfsData::<8>::decode(&buf, &());
        assert_eq!(back, d);
        assert_eq!(back.query(0), BfsData { length: 3, parent: 17 });
        assert_eq!(back.query(1), BfsData::default());
    }

    #[test]
    fn batch_visitor_codec_reattaches_ledger() {
        let ledger = Arc::new(LedgerCells::default());
        let v = BatchBfsVisitor::<4> {
            vertex: VertexId(9),
            length: 2,
            parent: 5,
            mask: 0b1010,
            ledger: Arc::clone(&ledger),
        };
        let mut buf = vec![0u8; BatchBfsVisitor::<4>::WIRE_SIZE];
        v.encode(&mut buf);
        let back = BatchBfsVisitor::<4>::decode(&buf, &ledger);
        assert_eq!(back.vertex, v.vertex);
        assert_eq!(back.length, v.length);
        assert_eq!(back.parent, v.parent);
        assert_eq!(back.mask, v.mask);
        assert!(Arc::ptr_eq(&back.ledger, &ledger));
    }

    #[test]
    fn ledger_sums_match_totals_by_construction() {
        let cells = LedgerCells::default();
        cells.record_executed(0b1011);
        cells.record_pushed(0b1011, 4);
        cells.record_executed(0b0001);
        cells.record_pushed(0b0001, 2);
        let snap = cells.snapshot();
        snap.check(4).unwrap();
        assert_eq!(snap.executed[0], 2);
        assert_eq!(snap.executed[1], 1);
        assert_eq!(snap.executed[3], 1);
        assert_eq!(snap.executed_total, 4);
        assert_eq!(snap.pushed[0], 6);
        assert_eq!(snap.pushed_total, 14);
        assert!(snap.check(1).is_err(), "bit 1 attributed beyond width 1");
    }

    #[test]
    fn reach_data_codec_roundtrip() {
        let d = ReachData { reached: 0xDEAD, expanded: 0xBEEF };
        let mut buf = vec![0u8; ReachData::WIRE_SIZE];
        d.encode(&mut buf);
        assert_eq!(ReachData::decode(&buf, &()), d);
    }

    #[test]
    fn batched_matches_single_source_smoke() {
        use crate::algorithms::bfs::{bfs, BfsConfig};
        use havoq_comm::CommWorld;
        use havoq_graph::csr::GraphConfig;
        use havoq_graph::dist::PartitionStrategy;
        use havoq_graph::gen::rmat::RmatGenerator;

        let gen = RmatGenerator::graph500(7);
        let edges = gen.symmetric_edges(11);
        let sources = [VertexId(0), VertexId(1), VertexId(2)];
        let out = CommWorld::run(2, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let serial: Vec<_> = sources
                .iter()
                .map(|&s| {
                    let r = bfs(ctx, &g, s, &BfsConfig::default());
                    (r.visited_count, r.traversed_edges, r.max_level, r.local_state)
                })
                .collect();
            let batched = bfs_batch::<4>(ctx, &g, &sources, &BatchConfig::default());
            let reach = reach_batch(ctx, &g, &sources, &BatchConfig::default());
            (serial, batched, reach)
        });
        for (serial, batched, reach) in out {
            batched.ledger.check(sources.len()).unwrap();
            for (qi, (v, t, m, state)) in serial.iter().enumerate() {
                let agg = &batched.per_query[qi];
                assert_eq!((agg.visited_count, agg.traversed_edges, agg.max_level), (*v, *t, *m));
                assert_eq!(reach.reached_counts[qi], *v, "reach set == BFS visited set");
                let serial_levels: Vec<u64> = state.iter().map(|d| d.length).collect();
                let batched_levels: Vec<u64> =
                    batched.local_state[qi].iter().map(|d| d.length).collect();
                assert_eq!(serial_levels, batched_levels, "query {qi} levels");
            }
        }
    }
}
