//! Table II: the paper's November 2011 Graph500 results with NAND Flash —
//! the same BFS on three storage tiers:
//!
//! | machine      | storage    | vertices | TEPS       |
//! | Hyperion-DIT | DRAM       | 2^31     | 1004 MTEPS |
//! | Hyperion-DIT | Fusion-io  | 2^36     |  609 MTEPS |
//! | Trestles     | SATA SSD   | 2^36     |  242 MTEPS |
//! | Leviathan    | Fusion-io  | 2^36     |   52 MTEPS | (single node)
//!
//! Reproduction: one Graph500-style run per simulated tier. The DRAM tier
//! runs a smaller graph fully in memory (as Hyperion's DRAM row does);
//! the NVRAM tiers run the larger graph behind the page cache with
//! Fusion-io-like and SATA-SSD-like latency/concurrency profiles. The
//! ordering DRAM > Fusion-io > SATA-SSD, with NVRAM within a small factor
//! of DRAM, is the shape to reproduce.

use havoq_bench::{csv_row, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_nvram::cache::PageCacheConfig;
use havoq_nvram::device::DeviceProfile;

fn main() {
    let ranks: usize = pick(2, 4);
    let dram_scale: u32 = pick(10, 12);
    let big_scale: u32 = dram_scale + pick(1, 3);

    let mut exp = Experiment::begin(
        &[&format!("Table II — Graph500-style BFS across storage tiers ({ranks} ranks)")],
        "table2_graph500.csv",
        &["tier", "scale", "storage", "MTEPS", "hit_rate%"],
        &["tier", "scale", "storage", "mteps", "hit_rate"],
    );

    let tiers: Vec<(&str, u32, Option<DeviceProfile>)> = vec![
        ("hyperion-dram", dram_scale, None),
        ("hyperion-fusionio", big_scale, Some(DeviceProfile::fusion_io())),
        ("trestles-sata", big_scale, Some(DeviceProfile::sata_ssd())),
    ];

    for (tier, scale, profile) in tiers {
        let gen = RmatGenerator::graph500(scale);
        // cache sized at the DRAM graph's footprint, like the fixed 24 GB
        // nodes of the paper
        let cache_pages =
            ((RmatGenerator::graph500(dram_scale).num_edges() as usize * 2 * 8) / ranks / 4096)
                .max(16);
        let cfg = match profile {
            None => GraphConfig::default(),
            Some(p) => GraphConfig::external(
                p,
                PageCacheConfig {
                    page_size: 4096,
                    capacity_pages: cache_pages,
                    shards: 8,
                    readahead_pages: 8,
                    ..PageCacheConfig::default()
                },
            ),
        };
        // Graph500 convention: report the best of several search keys
        let mut best_teps = 0.0f64;
        let mut best_hit = None;
        for source in [0u64, 1, 2] {
            let out = CommWorld::run(ranks, |ctx| {
                let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                local.extend(
                    local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()),
                );
                let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, cfg);
                let r = bfs(ctx, &g, VertexId(source), &BfsConfig::default());
                (r, g.csr().cache_stats())
            });
            let (r, cache) = &out[0];
            let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
            let teps = r.traversed_edges as f64 / elapsed.as_secs_f64();
            if teps > best_teps {
                best_teps = teps;
                best_hit = *cache;
            }
        }
        let hit = best_hit.map(|c| format!("{:.2}", 100.0 * c.hit_rate())).unwrap_or("-".into());
        let storage = profile.map(|p| p.name).unwrap_or("dram");
        exp.row2(
            &csv_row![tier, scale, storage, format!("{:.2}", best_teps / 1e6), hit],
            &csv_row![tier, scale, storage, best_teps / 1e6, hit],
        );
    }
    exp.finish(&[
        "Paper shape: DRAM fastest; Fusion-io within ~0.6x of DRAM despite a",
        "32x larger graph; commodity SATA SSD slower again but still practical —",
        "the claim that NVRAM-backed BFS is Graph500-competitive.",
    ]);
}
