//! Ablation of the Section V-A locality optimization: visitors of equal
//! priority are ordered by vertex id so semi-external adjacency reads walk
//! the CSR pages sequentially. This binary runs external-memory BFS with
//! the ordering on and off and reports the page-cache hit rates and device
//! read counts — the quantity the optimization exists to improve.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_nvram::cache::PageCacheConfig;
use havoq_nvram::device::DeviceProfile;

fn main() {
    let scale: u32 = pick(11, 14);
    let ranks: usize = pick(2, 4);
    // tight cache: 1/16 of the data, so ordering decides the hit rate
    let gen = RmatGenerator::graph500(scale);
    let cache_pages = ((gen.num_edges() as usize * 2 * 8) / ranks / 4096 / 16).max(8);

    let mut exp = Experiment::begin(
        &[
            "Section V-A ablation — vertex-id visitor ordering vs arrival order",
            &format!("(external-memory BFS, RMAT scale {scale}, {ranks} ranks, cache = data/16)"),
        ],
        "ablation_locality.csv",
        &["ordering", "hit_rate%", "dev_reads", "io_stall_ms", "time_ms", "MTEPS"],
        &["ordering", "hit_rate", "device_reads", "io_stall_ms", "time_ms", "mteps"],
    );

    for (name, locality) in [("vertex-id", true), ("arrival", false)] {
        let cfg = GraphConfig::external(
            DeviceProfile::fusion_io(),
            PageCacheConfig {
                page_size: 4096,
                capacity_pages: cache_pages,
                shards: 8,
                ..PageCacheConfig::default()
            },
        );
        let out = CommWorld::run(ranks, |ctx| {
            let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
            let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, cfg);
            let mut bcfg = BfsConfig::default();
            bcfg.traversal.locality_order = locality;
            let r = bfs(ctx, &g, VertexId(0), &bcfg);
            let cache = g.csr().cache_stats().unwrap();
            let dev = g.csr().cache().unwrap().device().stats();
            (r, cache, dev)
        });
        let (r, cache, dev) = &out[0];
        let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
        // sync demand paging on purpose: the stall column shows how much
        // blocking I/O each ordering leaves on the access path
        let io_stall = out.iter().map(|o| o.0.stats.io_stall).max().unwrap();
        exp.row2(
            &csv_row![
                name,
                format!("{:.2}", 100.0 * cache.hit_rate()),
                dev.reads,
                ms(io_stall),
                ms(elapsed),
                havoq_bench::mteps(r.traversed_edges, elapsed)
            ],
            &csv_row![
                name,
                cache.hit_rate(),
                dev.reads,
                io_stall.as_secs_f64() * 1e3,
                elapsed.as_secs_f64() * 1e3,
                r.traversed_edges as f64 / elapsed.as_secs_f64() / 1e6
            ],
        );
    }
    exp.finish(&[
        "Paper claim (V-A): ordering equal-priority visitors by vertex id",
        "improves page-level locality of NVRAM-resident graph data; expect a",
        "higher hit rate and fewer device reads on the vertex-id row.",
    ]);
}
