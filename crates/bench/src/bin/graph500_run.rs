//! Full Graph500-style benchmark run, the protocol behind the paper's
//! Figure 5 / Table II submissions: generate an RMAT graph, construct the
//! distributed data structure (timed), run BFS from a sample of random
//! search keys with nonzero degree, *validate every BFS tree*, and report
//! the TEPS statistics (min/harmonic-mean/max) the benchmark defines.
//!
//! The graph is constructed once and reused for every (search key ×
//! thread count) BFS: each key runs at every intra-rank worker-pool size
//! in the sweep (default 1/2/4; `--threads N` pins a single size), and a
//! per-thread-count TEPS summary table reports the worker-pool speedup at
//! the end. Every tree is validated at every thread count, and the
//! traversed-edge count per key must not depend on the thread count.

use havoq_bench::{csv_row, overhead_pct, pick, Experiment};
use havoq_comm::{CommWorld, FaultConfig};
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_core::algorithms::validate::validate_bfs;
use havoq_core::CheckpointSpec;
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;

fn main() {
    let scale: u32 = pick(10, 14);
    let ranks: usize = pick(2, 8);
    let num_keys: usize = pick(4, 16); // official runs use 64
    let ckpt_every = havoq_bench::checkpoint_every();
    let fault_seed = havoq_bench::faults();
    let thread_counts: Vec<usize> = match havoq_bench::threads() {
        Some(n) => vec![n.max(1)],
        None => vec![1, 2, 4],
    };

    println!("Graph500-style run: RMAT scale {scale}, {ranks} ranks, {num_keys} search keys");
    println!("intra-rank worker threads swept over {thread_counts:?} (same graph, same keys)");
    if let Some(e) = ckpt_every {
        println!("checkpointing every {e} visitors/rank into the NVRAM store");
    }
    if let Some(s) = fault_seed {
        println!(
            "fault injection: lossy chaos plan, seed {s:#x} \
             (frame corruption + loss healed by CRC + NACK/retransmit)"
        );
    }
    let gen = RmatGenerator::graph500(scale);
    let tcs = thread_counts.clone();

    let results = CommWorld::run_with_faults(ranks, fault_seed.map(FaultConfig::lossy), |ctx| {
        let t0 = std::time::Instant::now();
        let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
        local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
        let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
        ctx.barrier();
        let construction = t0.elapsed();

        // search keys: deterministic pseudo-random vertices; skip keys with
        // no edges (benchmark rule), detected by a degree probe
        let mut runs = Vec::new();
        let mut key_state = 0x9E3779B97F4A7C15u64;
        let mut tried = 0;
        let mut keys_used = 0;
        while keys_used < num_keys && tried < num_keys * 4 {
            key_state ^= key_state << 13;
            key_state ^= key_state >> 7;
            key_state ^= key_state << 17;
            tried += 1;
            let key = VertexId(key_state % g.num_vertices());
            // degree probe: the master broadcasts whether the key has edges
            let deg = if g.is_master(key) { g.total_degree(key) } else { 0 };
            if ctx.all_reduce_max(deg) == 0 {
                continue;
            }
            keys_used += 1;
            // the built graph is shared by every thread count for this key
            for &threads in &tcs {
                let mut bcfg = BfsConfig::default();
                bcfg.traversal.threads = threads;
                if let Some(every) = ckpt_every {
                    bcfg = bcfg.with_checkpoint(CheckpointSpec::default().with_every(every));
                }
                let r = bfs(ctx, &g, key, &bcfg);
                let report = validate_bfs(ctx, &g, key, &r.local_state);
                let wire_bytes = ctx.all_reduce_sum(r.stats.bytes_sent);
                // world totals of the integrity machinery for this run:
                // injected corruption/loss and the repair traffic that
                // healed it
                let integrity = [
                    ctx.all_reduce_sum(r.stats.corrupt_frames_detected),
                    ctx.all_reduce_sum(r.stats.frames_dropped_injected),
                    ctx.all_reduce_sum(r.stats.retransmits),
                    ctx.all_reduce_sum(r.stats.nacks_sent),
                ];
                runs.push((
                    key.0,
                    threads,
                    r.traversed_edges,
                    r.elapsed,
                    report.is_valid(),
                    wire_bytes,
                    r.stats.checkpoint_time,
                    integrity,
                ));
            }
        }
        (construction, runs)
    });

    let (construction, runs) = &results[0];
    let mut exp = Experiment::begin(
        &[&format!("construction time: {construction:?} (built once, reused for every BFS)")],
        "graph500_run.csv",
        &["key", "threads", "traversed", "time_ms", "MTEPS", "valid", "wire_KiB", "ckpt_ovh%"],
        &[
            "key",
            "threads",
            "traversed_edges",
            "time_ms",
            "mteps",
            "valid",
            "wire_bytes",
            "checkpoint_overhead_pct",
        ],
    );
    // per-thread-count TEPS populations for the summary table
    let mut teps_by_tc: Vec<Vec<f64>> = vec![Vec::new(); tcs.len()];
    let mut all_valid = true;
    let mut total_ck = std::time::Duration::ZERO;
    let mut total_elapsed = std::time::Duration::ZERO;
    let mut integ = [0u64; 4];
    let mut traversed_by_key: std::collections::HashMap<u64, u64> =
        std::collections::HashMap::new();
    for (i, (key, threads, traversed, _elapsed, valid, wire_bytes, _ck, run_integ)) in
        runs.iter().enumerate()
    {
        for (t, v) in integ.iter_mut().zip(run_integ) {
            *t += v;
        }
        // the BFS tree may differ across thread counts (ties), but the
        // traversed-edge count is part of the traversal fingerprint and
        // must not
        let prev = traversed_by_key.entry(*key).or_insert(*traversed);
        assert_eq!(*prev, *traversed, "traversed edges for key {key} changed at threads={threads}");
        // use the slowest rank's elapsed (and checkpoint time) for this run
        let elapsed = results.iter().map(|(_, rs)| rs[i].3).max().unwrap();
        let ck_time = results.iter().map(|(_, rs)| rs[i].6).max().unwrap();
        let ck_ovh = overhead_pct(ck_time, elapsed);
        total_ck += ck_time;
        total_elapsed += elapsed;
        let t = *traversed as f64 / elapsed.as_secs_f64();
        teps_by_tc[tcs.iter().position(|tc| tc == threads).unwrap()].push(t);
        all_valid &= *valid;
        exp.row2(
            &csv_row![
                key,
                threads,
                traversed,
                havoq_bench::ms(elapsed),
                format!("{:.2}", t / 1e6),
                valid,
                wire_bytes / 1024,
                format!("{ck_ovh:.2}")
            ],
            &csv_row![
                key,
                threads,
                traversed,
                elapsed.as_secs_f64() * 1e3,
                t / 1e6,
                valid,
                wire_bytes,
                ck_ovh
            ],
        );
    }

    // per-thread-count TEPS summary: the Graph500 statistics at every
    // worker-pool size, plus harmonic-mean speedup over the serial rows
    println!();
    havoq_bench::print_header(&["threads", "min_MTEPS", "harm_MTEPS", "max_MTEPS", "speedup"]);
    let harm = |ts: &[f64]| ts.len() as f64 / ts.iter().map(|t| 1.0 / t).sum::<f64>();
    let base_harm = harm(&teps_by_tc[0]);
    let mut summary_lines = Vec::new();
    for (tc, ts) in tcs.iter().zip(&teps_by_tc) {
        let min = ts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ts.iter().cloned().fold(0.0, f64::max);
        let h = harm(ts);
        havoq_bench::print_row(&csv_row![
            tc,
            format!("{:.2}", min / 1e6),
            format!("{:.2}", h / 1e6),
            format!("{:.2}", max / 1e6),
            format!("{:.2}x", h / base_harm)
        ]);
        summary_lines.push(format!(
            "threads={tc}: TEPS min/harm/max {:.2}/{:.2}/{:.2} MTEPS ({:.2}x)",
            min / 1e6,
            h / 1e6,
            max / 1e6,
            h / base_harm
        ));
    }

    let notes: Vec<String> = summary_lines
        .into_iter()
        .chain([
            format!(
                "checkpoint overhead over all runs: {:.2}%",
                overhead_pct(total_ck, total_elapsed)
            ),
            format!(
                "integrity over all runs: {} corrupt frames detected, {} injected drops, \
                 {} retransmits, {} NACKs (all repaired; trees validated below)",
                integ[0], integ[1], integ[2], integ[3]
            ),
            format!("all trees valid: {all_valid}"),
        ])
        .collect();
    let note_refs: Vec<&str> = notes.iter().map(String::as_str).collect();
    exp.finish(&note_refs);
    assert!(all_valid, "Graph500 validation failed");
}
