//! Full Graph500-style benchmark run, the protocol behind the paper's
//! Figure 5 / Table II submissions: generate an RMAT graph, construct the
//! distributed data structure (timed), run BFS from a sample of random
//! search keys with nonzero degree, *validate every BFS tree*, and report
//! the TEPS statistics (min/harmonic-mean/max) the benchmark defines.
//!
//! The graph is constructed once and reused for every (search key ×
//! thread count) BFS: each key runs at every intra-rank worker-pool size
//! in the sweep (default 1/2/4; `--threads N` pins a single size), and a
//! per-thread-count TEPS summary table reports the worker-pool speedup at
//! the end. Every tree is validated at every thread count, and the
//! traversed-edge count per key must not depend on the thread count.
//!
//! Search keys come from [`havoq_bench::select_search_keys`]: distinct,
//! nonzero-degree, agreed on by every rank, and *loudly* failing (instead
//! of silently shrinking the key set) when the graph cannot supply them.
//!
//! `--batch K` switches to the batched multi-source mode (DESIGN.md §12):
//! the same keys run first through the sequential per-key loop and then
//! through [`QueryBatch`] in chunks of K sharing one traversal each. The
//! per-key results must be bit-identical (visited count, traversed edges,
//! max level, and the full level array fingerprint — asserted), and the
//! aggregate key throughput speedup of the batched pass is reported.

use havoq_bench::{csv_row, overhead_pct, pick, Experiment};
use havoq_comm::{CommWorld, FaultConfig, RankCtx};
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_core::algorithms::validate::validate_bfs;
use havoq_core::batch::{BatchConfig, QueryBatch, MAX_BATCH};
use havoq_core::direction::{direction_bfs, DirectionMode};
use havoq_core::CheckpointSpec;
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;

fn main() {
    match (havoq_bench::batch(), havoq_bench::direction()) {
        (Some(k), _) => run_batched(k),
        (None, Some(mode)) if mode != DirectionMode::Async => run_direction_compare(mode),
        _ => run_thread_sweep(),
    }
}

/// splitmix64 finalizer: the per-vertex mixer for the level fingerprint.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58476D1CE4E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Order-independent global digest of a BFS level array: every master
/// vertex contributes `mix(vertex ⊕ mix(level))` into a wrapping sum, then
/// the sum is all-reduced. Identical level arrays (the schedule-invariant
/// part of a BFS — parents are not) yield identical digests on every rank.
fn level_fingerprint(ctx: &RankCtx, g: &DistGraph, length_of: impl Fn(usize) -> u64) -> u64 {
    let mut acc = 0u64;
    for v in g.local_vertices() {
        if g.is_master(v) {
            acc = acc.wrapping_add(mix(v.0 ^ mix(length_of(g.local_index(v)))));
        }
    }
    ctx.all_reduce_sum(acc)
}

/// The slowest rank's elapsed time, in seconds — the number the aggregate
/// key-throughput comparison is honest about.
fn world_elapsed(ctx: &RankCtx, local: std::time::Duration) -> f64 {
    ctx.all_reduce_max(local.as_nanos() as u64) as f64 / 1e9
}

/// The `--batch K` mode: sequential per-key pass, then the batched
/// multi-source pass over the same keys, bit-identical results asserted,
/// aggregate speedup reported.
fn run_batched(k: usize) {
    let k = k.clamp(1, MAX_BATCH);
    let scale: u32 = pick(9, 12);
    let ranks: usize = pick(2, 4);
    let num_keys: usize = pick(8, 64);
    let threads = havoq_bench::threads().unwrap_or(1).max(1);
    let ckpt_every = havoq_bench::checkpoint_every();
    let fault_seed = havoq_bench::faults();

    println!(
        "Graph500 batched mode: RMAT scale {scale}, {ranks} ranks, {num_keys} keys, \
         batch width {k}, {threads} worker thread(s)/rank"
    );
    if let Some(e) = ckpt_every {
        println!("checkpointing every {e} visitors/rank into the NVRAM store");
    }
    if let Some(s) = fault_seed {
        println!("fault injection: lossy chaos plan, seed {s:#x}");
    }
    let gen = RmatGenerator::graph500(scale);

    let results = CommWorld::run_with_faults(ranks, fault_seed.map(FaultConfig::lossy), |ctx| {
        let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
        local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
        let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
        ctx.barrier();

        let keys = havoq_bench::select_search_keys(ctx, &g, num_keys, havoq_bench::SEARCH_KEY_SEED);

        let spec = ckpt_every.map(|e| CheckpointSpec::default().with_every(e));

        // --- sequential reference pass: one traversal per key ---
        // only the traversals are timed; validation and fingerprinting are
        // equivalence checks, not part of either pass's served throughput
        let mut integ = [0u64; 4];
        let mut serial_local = std::time::Duration::ZERO;
        let mut serial = Vec::new(); // (visited, traversed, max_level, level_fp)
        for &key in &keys {
            let mut bcfg = BfsConfig::default();
            bcfg.traversal.threads = threads;
            if let Some(s) = spec {
                bcfg = bcfg.with_checkpoint(s);
            }
            let t = std::time::Instant::now();
            let r = bfs(ctx, &g, key, &bcfg);
            serial_local += t.elapsed();
            let report = validate_bfs(ctx, &g, key, &r.local_state);
            assert!(report.is_valid(), "sequential tree for key {key:?} invalid: {report:?}");
            let fp = level_fingerprint(ctx, &g, |li| r.local_state[li].length);
            serial.push((r.visited_count, r.traversed_edges, r.max_level, fp));
            integ[0] += r.stats.corrupt_frames_detected;
            integ[1] += r.stats.frames_dropped_injected;
            integ[2] += r.stats.retransmits;
            integ[3] += r.stats.nacks_sent;
        }
        let serial_secs = world_elapsed(ctx, serial_local);

        // --- batched pass: chunks of up to K keys share one traversal ---
        let mut batched_local = std::time::Duration::ZERO;
        let mut batched = Vec::new();
        let mut chunk_rows = Vec::new(); // (width, secs, traversed_sum)
        for chunk in keys.chunks(k) {
            let mut qb = QueryBatch::new(k);
            for &s in chunk {
                qb.try_admit(s).expect("chunk cannot exceed batch capacity");
            }
            let mut bc = BatchConfig::default().with_threads(threads);
            if let Some(s) = spec {
                bc = bc.with_checkpoint(s);
            }
            let tc = std::time::Instant::now();
            let res = qb.run_bfs(ctx, &g, &bc);
            let chunk_elapsed = tc.elapsed();
            batched_local += chunk_elapsed;
            let chunk_secs = world_elapsed(ctx, chunk_elapsed);
            res.ledger.check(chunk.len()).expect("per-query ledger must sum to batch totals");
            let mut traversed_sum = 0u64;
            for (qi, &key) in chunk.iter().enumerate() {
                let agg = &res.per_query[qi];
                let report = validate_bfs(ctx, &g, key, &res.local_state[qi]);
                assert!(report.is_valid(), "batched tree for key {key:?} invalid: {report:?}");
                let fp = level_fingerprint(ctx, &g, |li| res.local_state[qi][li].length);
                batched.push((agg.visited_count, agg.traversed_edges, agg.max_level, fp));
                traversed_sum += agg.traversed_edges;
            }
            chunk_rows.push((chunk.len(), chunk_secs, traversed_sum));
            integ[0] += res.stats.corrupt_frames_detected;
            integ[1] += res.stats.frames_dropped_injected;
            integ[2] += res.stats.retransmits;
            integ[3] += res.stats.nacks_sent;
        }
        let batched_secs = world_elapsed(ctx, batched_local);

        let integ = [
            ctx.all_reduce_sum(integ[0]),
            ctx.all_reduce_sum(integ[1]),
            ctx.all_reduce_sum(integ[2]),
            ctx.all_reduce_sum(integ[3]),
        ];
        (keys, serial, batched, serial_secs, batched_secs, chunk_rows, integ)
    });

    let (keys, serial, batched, serial_secs, batched_secs, chunk_rows, integ) = &results[0];

    // bit-identical equivalence, the acceptance gate: every per-key
    // aggregate and the full level-array digest must match the sequential
    // reference exactly
    for (i, (s, b)) in serial.iter().zip(batched).enumerate() {
        assert_eq!(
            s, b,
            "key {:?}: batched (visited, traversed, max_level, level_fp) diverged from sequential",
            keys[i]
        );
    }

    let mut exp = Experiment::begin(
        &[&format!(
            "batched equivalence: {} keys bit-identical to the sequential reference",
            keys.len()
        )],
        "graph500_batch.csv",
        &["chunk", "width", "time_ms", "agg_MTEPS"],
        &["chunk", "width", "time_ms", "agg_mteps"],
    );
    for (i, (width, secs, traversed)) in chunk_rows.iter().enumerate() {
        let mteps = *traversed as f64 / secs.max(1e-12) / 1e6;
        exp.row2(
            &csv_row![i, width, format!("{:.2}", secs * 1e3), format!("{mteps:.2}")],
            &csv_row![i, width, secs * 1e3, mteps],
        );
    }

    // aggregate key throughput: keys per second over the whole pass
    let serial_kps = keys.len() as f64 / serial_secs.max(1e-12);
    let batched_kps = keys.len() as f64 / batched_secs.max(1e-12);
    let speedup = batched_kps / serial_kps;
    let notes = [
        format!(
            "sequential pass: {} keys in {:.2} ms ({serial_kps:.1} keys/s)",
            keys.len(),
            serial_secs * 1e3
        ),
        format!(
            "batched pass (width {k}): {} keys in {:.2} ms ({batched_kps:.1} keys/s)",
            keys.len(),
            batched_secs * 1e3
        ),
        format!("aggregate key-throughput speedup: {speedup:.2}x"),
        format!(
            "integrity over both passes: {} corrupt frames detected, {} injected drops, \
             {} retransmits, {} NACKs (all repaired; every tree validated)",
            integ[0], integ[1], integ[2], integ[3]
        ),
    ];
    let note_refs: Vec<&str> = notes.iter().map(String::as_str).collect();
    exp.finish(&note_refs);
    if speedup < 2.0 {
        println!(
            "WARNING: batched speedup {speedup:.2}x below the 2x target \
             (expected on tiny quick-mode graphs where per-traversal setup dominates)"
        );
    }
}

/// The `--direction {top,bottom,auto}` mode (DESIGN.md §13): every search
/// key runs twice through the level-synchronous engine — forced top-down,
/// then the requested policy — asserting bit-identical level fingerprints
/// in-binary while reporting the edge-inspection and TEPS deltas, with a
/// per-level `dir=top|bottom` trace table per key.
fn run_direction_compare(mode: DirectionMode) {
    let scale: u32 = pick(10, 18);
    let ranks: usize = pick(2, 4);
    let num_keys: usize = pick(3, 8);
    let threads = havoq_bench::threads().unwrap_or(1).max(1);
    let fault_seed = havoq_bench::faults();
    let ckpt_every = havoq_bench::checkpoint_every();

    println!(
        "Graph500 direction mode: {mode:?} vs forced top-down, RMAT scale {scale}, \
         {ranks} ranks, {num_keys} search keys, {threads} worker thread(s)/rank"
    );
    if let Some(e) = ckpt_every {
        println!("checkpointing every {e} visitors/rank into the NVRAM store");
    }
    if let Some(s) = fault_seed {
        println!("fault injection: lossy chaos plan, seed {s:#x}");
    }
    let gen = RmatGenerator::graph500(scale);

    let results = CommWorld::run_with_faults(ranks, fault_seed.map(FaultConfig::lossy), |ctx| {
        let t0 = std::time::Instant::now();
        let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
        local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
        let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
        ctx.barrier();
        let construction = t0.elapsed();

        let keys = havoq_bench::select_search_keys(ctx, &g, num_keys, havoq_bench::SEARCH_KEY_SEED);

        let run_one = |key, m: DirectionMode| {
            let mut cfg = BfsConfig::default().with_direction(m).with_threads(threads);
            if let Some(every) = ckpt_every {
                cfg = cfg.with_checkpoint(CheckpointSpec::default().with_every(every));
            }
            let t = std::time::Instant::now();
            let run = direction_bfs(ctx, &g, key, &cfg);
            let secs = world_elapsed(ctx, t.elapsed());
            let report = validate_bfs(ctx, &g, key, &run.result.local_state);
            assert!(report.is_valid(), "{m:?} tree for key {key:?} invalid: {report:?}");
            let fp = level_fingerprint(ctx, &g, |li| run.result.local_state[li].length);
            (fp, run.edges_inspected, run.result.traversed_edges, secs, run.trace)
        };

        let mut rows = Vec::new();
        for &key in &keys {
            let (top_fp, top_insp, top_trav, top_secs, _) = run_one(key, DirectionMode::TopDown);
            let (fp, insp, trav, secs, trace) = run_one(key, mode);
            // the in-binary equivalence gate: identical level arrays
            assert_eq!(
                fp, top_fp,
                "key {key:?}: {mode:?} level fingerprint diverged from forced top-down"
            );
            assert_eq!(trav, top_trav, "key {key:?}: traversed-edge count diverged");
            rows.push((key.0, top_insp, insp, top_trav, top_secs, secs, trace));
        }
        (construction, rows)
    });

    let (construction, rows) = &results[0];
    let mut exp = Experiment::begin(
        &[&format!("construction time: {construction:?} (built once, reused for every BFS)")],
        "graph500_direction.csv",
        &["key", "top_insp", "mode_insp", "insp_ratio", "top_MTEPS", "mode_MTEPS", "sched"],
        &[
            "key",
            "top_inspected",
            "mode_inspected",
            "inspection_ratio",
            "top_mteps",
            "mode_mteps",
            "schedule",
        ],
    );
    let mut top_total = 0u64;
    let mut mode_total = 0u64;
    for (key, top_insp, insp, trav, top_secs, secs, trace) in rows {
        top_total += top_insp;
        mode_total += insp;
        let ratio = *top_insp as f64 / (*insp).max(1) as f64;
        let top_mteps = *trav as f64 / top_secs.max(1e-12) / 1e6;
        let mode_mteps = *trav as f64 / secs.max(1e-12) / 1e6;
        let sched: String =
            trace.iter().map(|t| if t.dir.label() == "top" { 'T' } else { 'B' }).collect();
        exp.row2(
            &csv_row![
                key,
                top_insp,
                insp,
                format!("{ratio:.2}x"),
                format!("{top_mteps:.2}"),
                format!("{mode_mteps:.2}"),
                sched
            ],
            &csv_row![key, top_insp, insp, ratio, top_mteps, mode_mteps, sched],
        );
    }

    // per-level direction traces: the dir=top|bottom column per key
    for (key, _, _, _, _, _, trace) in rows {
        println!("\nper-level trace, key {key}:");
        havoq_bench::print_header(&[
            "level",
            "dir",
            "frontier",
            "frontier_edges",
            "inspected",
            "candidates",
        ]);
        for t in trace {
            havoq_bench::print_row(&csv_row![
                t.level,
                t.dir.label(),
                t.frontier,
                t.frontier_edges,
                t.inspected,
                t.candidates
            ]);
        }
    }

    let aggregate_ratio = top_total as f64 / mode_total.max(1) as f64;
    let notes = [
        format!(
            "aggregate inspections: top-down {top_total}, {mode:?} {mode_total} \
             ({aggregate_ratio:.2}x fewer)"
        ),
        "level fingerprints and traversed-edge counts bit-identical to forced top-down on every \
         key (asserted in-binary)"
            .to_string(),
    ];
    let note_refs: Vec<&str> = notes.iter().map(String::as_str).collect();
    exp.finish(&note_refs);

    // the acceptance gate: at Graph500 submission scale the heuristic must
    // cut edge inspections at least 3x on the RMAT workload
    if mode == DirectionMode::Auto && scale >= 18 {
        assert!(
            aggregate_ratio >= 3.0,
            "direction-optimizing BFS inspected only {aggregate_ratio:.2}x fewer edges than \
             top-down at scale {scale} (gate: >= 3x)"
        );
    }
}

/// The classic mode: per-key sequential BFS swept over worker-pool sizes.
fn run_thread_sweep() {
    let scale: u32 = pick(10, 14);
    let ranks: usize = pick(2, 8);
    let num_keys: usize = pick(4, 16); // official runs use 64
    let ckpt_every = havoq_bench::checkpoint_every();
    let fault_seed = havoq_bench::faults();
    let thread_counts: Vec<usize> = match havoq_bench::threads() {
        Some(n) => vec![n.max(1)],
        None => vec![1, 2, 4],
    };

    println!("Graph500-style run: RMAT scale {scale}, {ranks} ranks, {num_keys} search keys");
    println!("intra-rank worker threads swept over {thread_counts:?} (same graph, same keys)");
    if let Some(e) = ckpt_every {
        println!("checkpointing every {e} visitors/rank into the NVRAM store");
    }
    if let Some(s) = fault_seed {
        println!(
            "fault injection: lossy chaos plan, seed {s:#x} \
             (frame corruption + loss healed by CRC + NACK/retransmit)"
        );
    }
    let gen = RmatGenerator::graph500(scale);
    let tcs = thread_counts.clone();

    let results = CommWorld::run_with_faults(ranks, fault_seed.map(FaultConfig::lossy), |ctx| {
        let t0 = std::time::Instant::now();
        let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
        local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
        let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
        ctx.barrier();
        let construction = t0.elapsed();

        // distinct nonzero-degree search keys, agreed on by every rank;
        // fails loudly if the graph cannot supply `num_keys` of them
        let keys = havoq_bench::select_search_keys(ctx, &g, num_keys, havoq_bench::SEARCH_KEY_SEED);

        let mut runs = Vec::new();
        for &key in &keys {
            // the built graph is shared by every thread count for this key
            for &threads in &tcs {
                let mut bcfg = BfsConfig::default();
                bcfg.traversal.threads = threads;
                if let Some(every) = ckpt_every {
                    bcfg = bcfg.with_checkpoint(CheckpointSpec::default().with_every(every));
                }
                let r = bfs(ctx, &g, key, &bcfg);
                let report = validate_bfs(ctx, &g, key, &r.local_state);
                let wire_bytes = ctx.all_reduce_sum(r.stats.bytes_sent);
                // world totals of the integrity machinery for this run:
                // injected corruption/loss and the repair traffic that
                // healed it
                let integrity = [
                    ctx.all_reduce_sum(r.stats.corrupt_frames_detected),
                    ctx.all_reduce_sum(r.stats.frames_dropped_injected),
                    ctx.all_reduce_sum(r.stats.retransmits),
                    ctx.all_reduce_sum(r.stats.nacks_sent),
                ];
                runs.push((
                    key.0,
                    threads,
                    r.traversed_edges,
                    r.elapsed,
                    report.is_valid(),
                    wire_bytes,
                    r.stats.checkpoint_time,
                    integrity,
                ));
            }
        }
        (construction, runs)
    });

    let (construction, runs) = &results[0];
    let mut exp = Experiment::begin(
        &[&format!("construction time: {construction:?} (built once, reused for every BFS)")],
        "graph500_run.csv",
        &["key", "threads", "traversed", "time_ms", "MTEPS", "valid", "wire_KiB", "ckpt_ovh%"],
        &[
            "key",
            "threads",
            "traversed_edges",
            "time_ms",
            "mteps",
            "valid",
            "wire_bytes",
            "checkpoint_overhead_pct",
        ],
    );
    // per-thread-count TEPS populations for the summary table
    let mut teps_by_tc: Vec<Vec<f64>> = vec![Vec::new(); tcs.len()];
    let mut all_valid = true;
    let mut total_ck = std::time::Duration::ZERO;
    let mut total_elapsed = std::time::Duration::ZERO;
    let mut integ = [0u64; 4];
    let mut traversed_by_key: std::collections::HashMap<u64, u64> =
        std::collections::HashMap::new();
    for (i, (key, threads, traversed, _elapsed, valid, wire_bytes, _ck, run_integ)) in
        runs.iter().enumerate()
    {
        for (t, v) in integ.iter_mut().zip(run_integ) {
            *t += v;
        }
        // the BFS tree may differ across thread counts (ties), but the
        // traversed-edge count is part of the traversal fingerprint and
        // must not
        let prev = traversed_by_key.entry(*key).or_insert(*traversed);
        assert_eq!(*prev, *traversed, "traversed edges for key {key} changed at threads={threads}");
        // use the slowest rank's elapsed (and checkpoint time) for this run
        let elapsed = results.iter().map(|(_, rs)| rs[i].3).max().unwrap();
        let ck_time = results.iter().map(|(_, rs)| rs[i].6).max().unwrap();
        let ck_ovh = overhead_pct(ck_time, elapsed);
        total_ck += ck_time;
        total_elapsed += elapsed;
        let t = *traversed as f64 / elapsed.as_secs_f64();
        teps_by_tc[tcs.iter().position(|tc| tc == threads).unwrap()].push(t);
        all_valid &= *valid;
        exp.row2(
            &csv_row![
                key,
                threads,
                traversed,
                havoq_bench::ms(elapsed),
                format!("{:.2}", t / 1e6),
                valid,
                wire_bytes / 1024,
                format!("{ck_ovh:.2}")
            ],
            &csv_row![
                key,
                threads,
                traversed,
                elapsed.as_secs_f64() * 1e3,
                t / 1e6,
                valid,
                wire_bytes,
                ck_ovh
            ],
        );
    }

    // per-thread-count TEPS summary: the Graph500 statistics at every
    // worker-pool size, plus harmonic-mean speedup over the serial rows
    println!();
    havoq_bench::print_header(&["threads", "min_MTEPS", "harm_MTEPS", "max_MTEPS", "speedup"]);
    // harmonic mean over the *finite, nonzero* TEPS population: a single
    // zero-TEPS key (a degenerate timer or an empty traversal) used to
    // poison the whole mean with a division by zero; such keys are now
    // skipped and counted loudly instead
    let harm = |ts: &[f64]| {
        let usable: Vec<f64> = ts.iter().copied().filter(|t| t.is_finite() && *t > 0.0).collect();
        let skipped = ts.len() - usable.len();
        if skipped > 0 {
            println!(
                "WARNING: {skipped} of {} TEPS samples zero or non-finite; \
                 excluded from the harmonic mean",
                ts.len()
            );
        }
        if usable.is_empty() {
            return 0.0;
        }
        usable.len() as f64 / usable.iter().map(|t| 1.0 / t).sum::<f64>()
    };
    let base_harm = harm(&teps_by_tc[0]).max(f64::MIN_POSITIVE);
    let mut summary_lines = Vec::new();
    for (tc, ts) in tcs.iter().zip(&teps_by_tc) {
        let min = ts.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ts.iter().cloned().fold(0.0, f64::max);
        let h = harm(ts);
        havoq_bench::print_row(&csv_row![
            tc,
            format!("{:.2}", min / 1e6),
            format!("{:.2}", h / 1e6),
            format!("{:.2}", max / 1e6),
            format!("{:.2}x", h / base_harm)
        ]);
        summary_lines.push(format!(
            "threads={tc}: TEPS min/harm/max {:.2}/{:.2}/{:.2} MTEPS ({:.2}x)",
            min / 1e6,
            h / 1e6,
            max / 1e6,
            h / base_harm
        ));
    }

    let notes: Vec<String> = summary_lines
        .into_iter()
        .chain([
            format!(
                "checkpoint overhead over all runs: {:.2}%",
                overhead_pct(total_ck, total_elapsed)
            ),
            format!(
                "integrity over all runs: {} corrupt frames detected, {} injected drops, \
                 {} retransmits, {} NACKs (all repaired; trees validated below)",
                integ[0], integ[1], integ[2], integ[3]
            ),
            format!("all trees valid: {all_valid}"),
        ])
        .collect();
    let note_refs: Vec<&str> = notes.iter().map(String::as_str).collect();
    exp.finish(&note_refs);
    assert!(all_valid, "Graph500 validation failed");
}
