//! Query-serving benchmark for the batched multi-source engine
//! (DESIGN.md §12, §15): a BFS query service under *offered load*.
//!
//! A deterministic open-loop arrival stream (Poisson-ish jittered
//! inter-arrival gaps from `TestRng`) is pushed through the
//! [`AdmissionQueue`] event-clock scheduler: whenever the server is free it
//! admits every arrival already due, up to the batch capacity, and serves
//! them as one [`QueryBatch`] traversal. The queue's synthetic clock
//! advances by the *measured* (slowest-rank) service time of each batch,
//! so per-query latency = queue wait + service without any wall-clock
//! nondeterminism — every rank feeds the same all-reduced service times
//! into the same scheduler and makes identical admission decisions.
//!
//! The sweep runs the same stream at load factors from 0.25× to 4× of the
//! calibrated single-batch capacity and reports, per load: offered vs
//! achieved QPS, batches served, mean batch occupancy, p50/p99 latency,
//! shed count and shed rate, serve-side errors, and aggregate traversal
//! MTEPS. Under overload with an *unbounded* backlog, latency ramps
//! without bound while throughput saturates; with `--backlog N` the queue
//! sheds instead, trading goodput for a hard latency ceiling — the run
//! asserts that trade in-binary at the 4× row (shed rate > 0 and p99
//! bounded by the backlog cap times the worst measured batch service).
//!
//! Serve-side failures (admission overflow, ledger invariant violations)
//! are *counted and reported*, not panicked on: a serving loop must keep
//! serving the rest of the stream when one batch misbehaves, and a
//! nonzero `errors` column is the honest signal that it did.
//!
//! `--batch K` caps the admission width (default full `MAX_BATCH`);
//! `--threads N` sizes each rank's worker pool; `--faults SEED` runs the
//! whole service under the lossy chaos adversary; `--backlog N` bounds
//! the pending queue; `--shed-policy reject-new|drop-oldest` picks who is
//! dropped at the bound.

use havoq_bench::{csv_row, pick, Experiment};
use havoq_comm::{CommWorld, FaultConfig};
use havoq_core::batch::{
    percentile_ns, AdmissionQueue, Arrival, BatchConfig, QueryBatch, ShedPolicy, MAX_BATCH,
};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_util::testing::TestRng;

const LOAD_FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

fn main() {
    let scale: u32 = pick(8, 11);
    let ranks: usize = pick(2, 4);
    let capacity: usize = havoq_bench::batch().unwrap_or_else(|| pick(8, 64)).clamp(1, MAX_BATCH);
    let num_queries: usize = pick(24, 256);
    let pool_size: usize = pick(8, 32);
    let threads = havoq_bench::threads().unwrap_or(1).max(1);
    let fault_seed = havoq_bench::faults();
    let backlog = havoq_bench::backlog();
    let shed_policy = match havoq_bench::shed_policy().as_deref() {
        None | Some("reject-new") => ShedPolicy::RejectNew,
        Some("drop-oldest") => ShedPolicy::DropOldest,
        Some(other) => {
            eprintln!("unknown --shed-policy {other:?} (want reject-new or drop-oldest)");
            std::process::exit(2);
        }
    };

    println!(
        "QPS serve: RMAT scale {scale}, {ranks} ranks, batch capacity {capacity}, \
         {num_queries} queries/load over a {pool_size}-key pool, {threads} thread(s)/rank"
    );
    if let Some(s) = fault_seed {
        println!("fault injection: lossy chaos plan, seed {s:#x}");
    }
    if let Some(b) = backlog {
        println!("admission backlog bounded at {b} pending queries, shed policy {shed_policy:?}");
    }
    let gen = RmatGenerator::graph500(scale);

    let results = CommWorld::run_with_faults(ranks, fault_seed.map(FaultConfig::lossy), |ctx| {
        let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
        local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
        let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
        ctx.barrier();

        let pool =
            havoq_bench::select_search_keys(ctx, &g, pool_size, havoq_bench::SEARCH_KEY_SEED);
        let bcfg = BatchConfig::default().with_threads(threads);

        // measured slowest-rank service of one batch, in ns — the number
        // every rank feeds into the (identical) admission scheduler.
        // Serve-side failures are counted, never panicked on: an admission
        // overflow drops the excess queries from this batch, a ledger
        // violation flags the batch, and the loop keeps serving.
        let serve_errors = std::cell::Cell::new(0u64);
        let serve = |sources: &[VertexId]| -> (u64, u64) {
            let mut qb = QueryBatch::new(capacity);
            let mut admitted = 0usize;
            for &s in sources {
                match qb.try_admit(s) {
                    Ok(_) => admitted += 1,
                    Err(_) => serve_errors.set(serve_errors.get() + 1),
                }
            }
            let t = std::time::Instant::now();
            let res = qb.run_bfs(ctx, &g, &bcfg);
            let ns = ctx.all_reduce_max(t.elapsed().as_nanos() as u64).max(1);
            if let Err(e) = res.ledger.check(admitted) {
                eprintln!("ledger invariant violated in a served batch: {e}");
                serve_errors.set(serve_errors.get() + 1);
            }
            let traversed: u64 = res.per_query.iter().map(|q| q.traversed_edges).sum();
            (ns, traversed)
        };

        // calibration: one full batch defines the service capacity
        let full: Vec<VertexId> = (0..capacity).map(|i| pool[i % pool.len()]).collect();
        let (cal_ns, _) = serve(&full);
        let capacity_qps = capacity as f64 / (cal_ns as f64 / 1e9);

        // the load sweep: same query stream, scaled inter-arrival gaps
        let mut rows = Vec::new();
        for (li, load) in LOAD_FACTORS.iter().enumerate() {
            let target_qps = capacity_qps * load;
            // round, don't truncate: at high offered rates the gap is a
            // handful of ns and `as u64` truncation inflated the offered
            // load by up to a full rate step
            let gap_ns = ((1e9 / target_qps).round() as u64).max(1);
            // deterministic jittered arrivals, identical on every rank
            let mut rng = TestRng::new(0xAD51_5510 + li as u64);
            let mut aq = AdmissionQueue::new(capacity).with_shed_policy(shed_policy);
            if let Some(b) = backlog {
                aq = aq.with_max_backlog(b);
            }
            let mut at = 0u64;
            let stream: Vec<Arrival> = (0..num_queries)
                .map(|_| {
                    at += gap_ns / 2 + rng.below(gap_ns);
                    let source = pool[rng.range_usize(0, pool.len() - 1)];
                    Arrival::new(at, source)
                })
                .collect();
            // the offered rate actually generated (jitter + integer gaps),
            // not the nominal target — this is what the row reports
            let offered_qps = num_queries as f64 / (at as f64 / 1e9).max(1e-12);
            let errors_before = serve_errors.get();
            let mut batches = 0u64;
            let mut traversed_total = 0u64;
            let mut service_total_ns = 0u64;
            let mut worst_service_ns = 0u64;
            // Feed arrivals only as the event clock reaches them: the
            // backlog bound must see the queue as it evolves in simulated
            // time — arrivals landing during a batch service are offered
            // when that service completes, which is when the server could
            // first look at them. (Offering the whole stream up front
            // would charge the bound against queries that have not
            // "happened" yet.)
            let mut next = 0usize;
            loop {
                while next < stream.len() && stream[next].at_ns <= aq.clock_ns() {
                    aq.offer(stream[next]);
                    next += 1;
                }
                if aq.pending_len() == 0 {
                    if next >= stream.len() {
                        break;
                    }
                    // idle server: the next arrival opens the next busy
                    // period (start_batch advances the clock to it)
                    aq.offer(stream[next]);
                    next += 1;
                    continue;
                }
                let admitted: Vec<VertexId> = aq.start_batch().iter().map(|a| a.source).collect();
                if admitted.is_empty() {
                    // everything due was shed (expired deadlines); let the
                    // clock advance to the next pending arrival
                    aq.finish_batch(0);
                    continue;
                }
                let (ns, traversed) = serve(&admitted);
                aq.finish_batch(ns);
                batches += 1;
                traversed_total += traversed;
                service_total_ns += ns;
                worst_service_ns = worst_service_ns.max(ns);
            }
            let served = aq.latencies_ns().len() as u64;
            let shed = aq.shed_total();
            // a degenerate sweep (no batches, or a clock that never
            // advanced) must read as zero throughput, not as the inf/NaN a
            // zero divisor produces — clamp and flag loudly
            let degenerate = batches == 0 || service_total_ns == 0 || aq.clock_ns() == 0;
            if degenerate {
                println!(
                    "WARNING: load {load:.2}x served {batches} batches in \
                     {service_total_ns} ns (clock {} ns): reporting zero throughput",
                    aq.clock_ns()
                );
            }
            let span_secs = aq.clock_ns() as f64 / 1e9;
            let achieved_qps = if degenerate { 0.0 } else { served as f64 / span_secs };
            let p50 = percentile_ns(aq.latencies_ns(), 50);
            let p99 = percentile_ns(aq.latencies_ns(), 99);
            let mteps = if degenerate {
                0.0
            } else {
                traversed_total as f64 / (service_total_ns as f64 / 1e9) / 1e6
            };
            let shed_pct = 100.0 * shed as f64 / num_queries as f64;
            let row_errors = serve_errors.get() - errors_before;

            // The bounded-backlog contract, asserted where it bites (the
            // 4× overload row): the queue must have shed (the stream
            // overflows any bound well under its length), and no served
            // query may have waited longer than the whole backlog draining
            // ahead of it at the worst measured batch service time —
            // ⌈B/C⌉ + 1 services, ≤ B of them once B ≥ 2 (B is clamped
            // ≥ 1 and capacity ≥ 1, so the cap below is never tighter
            // than the true bound).
            if let Some(b) = backlog {
                if *load >= 4.0 && !degenerate {
                    // shed > 0 is only forced when the stream can actually
                    // overflow the bound: at 4x, arrivals outrun service
                    // 4:1, so a stream longer than backlog + one batch
                    // must hit the wall
                    if num_queries > b + capacity {
                        assert!(
                            shed > 0,
                            "4x overload with backlog {b} must shed (offered {num_queries}, \
                             served {served})"
                        );
                    }
                    let cap_ns =
                        (b as u64).max((b as u64).div_ceil(capacity as u64) + 1) * worst_service_ns;
                    assert!(
                        p99 <= cap_ns,
                        "bounded backlog broke the latency ceiling: p99 {p99} ns > \
                         {cap_ns} ns (backlog {b} x worst service {worst_service_ns} ns)"
                    );
                }
            }

            rows.push((
                *load,
                offered_qps,
                achieved_qps,
                batches,
                served as f64 / batches.max(1) as f64,
                p50,
                p99,
                shed,
                shed_pct,
                row_errors,
                mteps,
            ));
        }
        (capacity_qps, cal_ns, serve_errors.get(), rows)
    });

    let (capacity_qps, cal_ns, serve_errors, rows) = &results[0];
    let mut exp = Experiment::begin(
        &[&format!(
            "calibrated capacity: {capacity_qps:.1} QPS \
             (one {capacity}-wide batch serves in {:.2} ms)",
            *cal_ns as f64 / 1e6
        )],
        "qps_serve.csv",
        &[
            "load", "offered", "achieved", "batches", "mean_occ", "p50_ms", "p99_ms", "shed",
            "shed_pct", "errors", "MTEPS",
        ],
        &[
            "load_factor",
            "offered_qps",
            "achieved_qps",
            "batches",
            "mean_occupancy",
            "p50_ms",
            "p99_ms",
            "shed",
            "shed_pct",
            "errors",
            "mteps",
        ],
    );
    let mut saturated_qps = 0.0f64;
    let mut total_shed = 0u64;
    for (load, offered, achieved, batches, occ, p50, p99, shed, shed_pct, errors, mteps) in rows {
        saturated_qps = saturated_qps.max(*achieved);
        total_shed += shed;
        exp.row2(
            &csv_row![
                format!("{load:.2}x"),
                format!("{offered:.1}"),
                format!("{achieved:.1}"),
                batches,
                format!("{occ:.1}"),
                format!("{:.3}", *p50 as f64 / 1e6),
                format!("{:.3}", *p99 as f64 / 1e6),
                shed,
                format!("{shed_pct:.1}"),
                errors,
                format!("{mteps:.2}")
            ],
            &csv_row![
                load,
                offered,
                achieved,
                batches,
                occ,
                *p50 as f64 / 1e6,
                *p99 as f64 / 1e6,
                shed,
                shed_pct,
                errors,
                mteps
            ],
        );
    }
    let notes = [
        format!("saturated throughput: {saturated_qps:.1} QPS at batch capacity {capacity}"),
        format!(
            "serve-side errors (admission overflow, ledger violations) across the whole run: \
             {serve_errors} — counted and reported, never panicked on"
        ),
        match backlog {
            Some(b) => format!(
                "backlog bounded at {b} ({shed_policy:?}): {total_shed} queries shed across the \
                 sweep; the 4x row asserts shed rate > 0 and p99 within the backlog latency \
                 ceiling in-binary"
            ),
            None => "backlog unbounded: under overload latency ramps with queue depth while \
                     achieved throughput saturates near capacity QPS — the classic open-loop \
                     saturation curve (pass --backlog N to trade goodput for a latency ceiling)"
                .to_string(),
        },
        "offered QPS is measured from the generated arrival stream (rounded integer gaps plus \
         jitter), not the nominal load-factor target"
            .to_string(),
    ];
    let note_refs: Vec<&str> = notes.iter().map(String::as_str).collect();
    exp.finish(&note_refs);
}
