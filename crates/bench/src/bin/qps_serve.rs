//! Query-serving benchmark for the batched multi-source engine
//! (DESIGN.md §12): a BFS query service under *offered load*.
//!
//! A deterministic open-loop arrival stream (Poisson-ish jittered
//! inter-arrival gaps from `TestRng`) is pushed through the
//! [`AdmissionQueue`] event-clock scheduler: whenever the server is free it
//! admits every arrival already due, up to the batch capacity, and serves
//! them as one [`QueryBatch`] traversal. The queue's synthetic clock
//! advances by the *measured* (slowest-rank) service time of each batch,
//! so per-query latency = queue wait + service without any wall-clock
//! nondeterminism — every rank feeds the same all-reduced service times
//! into the same scheduler and makes identical admission decisions.
//!
//! The sweep runs the same stream at load factors from 0.25× to 4× of the
//! calibrated single-batch capacity and reports, per load: offered vs
//! achieved QPS, batches served, mean batch occupancy, p50/p99 latency,
//! and aggregate traversal MTEPS. Under overload the
//! admission queue is expected to saturate near capacity QPS with latency
//! growing linearly in the backlog — the classic saturation curve.
//!
//! `--batch K` caps the admission width (default full `MAX_BATCH`);
//! `--threads N` sizes each rank's worker pool; `--faults SEED` runs the
//! whole service under the lossy chaos adversary.

use havoq_bench::{csv_row, pick, Experiment};
use havoq_comm::{CommWorld, FaultConfig};
use havoq_core::batch::{
    percentile_ns, AdmissionQueue, Arrival, BatchConfig, QueryBatch, MAX_BATCH,
};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_util::testing::TestRng;

const LOAD_FACTORS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

fn main() {
    let scale: u32 = pick(8, 11);
    let ranks: usize = pick(2, 4);
    let capacity: usize = havoq_bench::batch().unwrap_or_else(|| pick(8, 64)).clamp(1, MAX_BATCH);
    let num_queries: usize = pick(24, 256);
    let pool_size: usize = pick(8, 32);
    let threads = havoq_bench::threads().unwrap_or(1).max(1);
    let fault_seed = havoq_bench::faults();

    println!(
        "QPS serve: RMAT scale {scale}, {ranks} ranks, batch capacity {capacity}, \
         {num_queries} queries/load over a {pool_size}-key pool, {threads} thread(s)/rank"
    );
    if let Some(s) = fault_seed {
        println!("fault injection: lossy chaos plan, seed {s:#x}");
    }
    let gen = RmatGenerator::graph500(scale);

    let results = CommWorld::run_with_faults(ranks, fault_seed.map(FaultConfig::lossy), |ctx| {
        let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
        local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
        let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
        ctx.barrier();

        let pool =
            havoq_bench::select_search_keys(ctx, &g, pool_size, havoq_bench::SEARCH_KEY_SEED);
        let bcfg = BatchConfig::default().with_threads(threads);

        // measured slowest-rank service of one batch, in ns — the number
        // every rank feeds into the (identical) admission scheduler
        let serve = |sources: &[VertexId]| -> (u64, u64) {
            let mut qb = QueryBatch::new(capacity);
            for &s in sources {
                qb.try_admit(s).expect("admission queue never exceeds capacity");
            }
            let t = std::time::Instant::now();
            let res = qb.run_bfs(ctx, &g, &bcfg);
            let ns = ctx.all_reduce_max(t.elapsed().as_nanos() as u64).max(1);
            res.ledger.check(sources.len()).expect("ledger sums must match batch totals");
            let traversed: u64 = res.per_query.iter().map(|q| q.traversed_edges).sum();
            (ns, traversed)
        };

        // calibration: one full batch defines the service capacity
        let full: Vec<VertexId> = (0..capacity).map(|i| pool[i % pool.len()]).collect();
        let (cal_ns, _) = serve(&full);
        let capacity_qps = capacity as f64 / (cal_ns as f64 / 1e9);

        // the load sweep: same query stream, scaled inter-arrival gaps
        let mut rows = Vec::new();
        for (li, load) in LOAD_FACTORS.iter().enumerate() {
            let target_qps = capacity_qps * load;
            // round, don't truncate: at high offered rates the gap is a
            // handful of ns and `as u64` truncation inflated the offered
            // load by up to a full rate step
            let gap_ns = ((1e9 / target_qps).round() as u64).max(1);
            // deterministic jittered arrivals, identical on every rank
            let mut rng = TestRng::new(0xAD51_5510 + li as u64);
            let mut aq = AdmissionQueue::new(capacity);
            let mut at = 0u64;
            for _ in 0..num_queries {
                at += gap_ns / 2 + rng.below(gap_ns);
                let source = pool[rng.range_usize(0, pool.len() - 1)];
                aq.offer(Arrival { at_ns: at, source });
            }
            // the offered rate actually generated (jitter + integer gaps),
            // not the nominal target — this is what the row reports
            let offered_qps = num_queries as f64 / (at as f64 / 1e9).max(1e-12);
            let mut batches = 0u64;
            let mut traversed_total = 0u64;
            let mut service_total_ns = 0u64;
            loop {
                let admitted: Vec<VertexId> = aq.start_batch().iter().map(|a| a.source).collect();
                if admitted.is_empty() {
                    break;
                }
                let (ns, traversed) = serve(&admitted);
                aq.finish_batch(ns);
                batches += 1;
                traversed_total += traversed;
                service_total_ns += ns;
            }
            // a degenerate sweep (no batches, or a clock that never
            // advanced) must read as zero throughput, not as the inf/NaN a
            // zero divisor produces — clamp and flag loudly
            let degenerate = batches == 0 || service_total_ns == 0 || aq.clock_ns() == 0;
            if degenerate {
                println!(
                    "WARNING: load {load:.2}x served {batches} batches in \
                     {service_total_ns} ns (clock {} ns): reporting zero throughput",
                    aq.clock_ns()
                );
            }
            let span_secs = aq.clock_ns() as f64 / 1e9;
            let achieved_qps = if degenerate { 0.0 } else { num_queries as f64 / span_secs };
            let p50 = percentile_ns(aq.latencies_ns(), 50);
            let p99 = percentile_ns(aq.latencies_ns(), 99);
            let mteps = if degenerate {
                0.0
            } else {
                traversed_total as f64 / (service_total_ns as f64 / 1e9) / 1e6
            };
            rows.push((
                *load,
                offered_qps,
                achieved_qps,
                batches,
                num_queries as f64 / batches.max(1) as f64,
                p50,
                p99,
                mteps,
            ));
        }
        (capacity_qps, cal_ns, rows)
    });

    let (capacity_qps, cal_ns, rows) = &results[0];
    let mut exp = Experiment::begin(
        &[&format!(
            "calibrated capacity: {capacity_qps:.1} QPS \
             (one {capacity}-wide batch serves in {:.2} ms)",
            *cal_ns as f64 / 1e6
        )],
        "qps_serve.csv",
        &["load", "offered", "achieved", "batches", "mean_occ", "p50_ms", "p99_ms", "MTEPS"],
        &[
            "load_factor",
            "offered_qps",
            "achieved_qps",
            "batches",
            "mean_occupancy",
            "p50_ms",
            "p99_ms",
            "mteps",
        ],
    );
    let mut saturated_qps = 0.0f64;
    for (load, offered, achieved, batches, occ, p50, p99, mteps) in rows {
        saturated_qps = saturated_qps.max(*achieved);
        exp.row2(
            &csv_row![
                format!("{load:.2}x"),
                format!("{offered:.1}"),
                format!("{achieved:.1}"),
                batches,
                format!("{occ:.1}"),
                format!("{:.3}", *p50 as f64 / 1e6),
                format!("{:.3}", *p99 as f64 / 1e6),
                format!("{mteps:.2}")
            ],
            &csv_row![
                load,
                offered,
                achieved,
                batches,
                occ,
                *p50 as f64 / 1e6,
                *p99 as f64 / 1e6,
                mteps
            ],
        );
    }
    let notes = [
        format!("saturated throughput: {saturated_qps:.1} QPS at batch capacity {capacity}"),
        "offered QPS is measured from the generated arrival stream (rounded integer gaps plus \
         jitter), not the nominal load-factor target"
            .to_string(),
        "under overload the admission queue saturates near capacity QPS; latency grows with the \
         backlog while achieved throughput stays flat — the expected open-loop saturation curve"
            .to_string(),
    ];
    let note_refs: Vec<&str> = notes.iter().map(String::as_str).collect();
    exp.finish(&note_refs);
}
