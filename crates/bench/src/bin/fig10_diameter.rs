//! Figure 10: effect of graph diameter on BFS performance. Paper: Small
//! World graphs, fixed size (2^30 vertices, 2^34 edges) and fixed compute
//! (4096 BG/P cores); decreasing the rewire probability raises the
//! diameter, and BFS time grows with the resulting BFS level depth.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::smallworld::SmallWorldGenerator;
use havoq_graph::types::VertexId;

fn main() {
    let ranks: usize = pick(2, 4);
    let n: u64 = pick(1 << 12, 1 << 15);
    let degree = 16u64;
    let rewires: &[f64] = pick(&[0.001, 0.1][..], &[0.0001, 0.001, 0.01, 0.05, 0.1, 0.2, 0.3][..]);

    let mut exp = Experiment::begin(
        &[
            &format!("Figure 10 — diameter effects on BFS (Small World, {n} vertices,"),
            &format!("uniform degree {degree}, fixed {ranks} ranks; rewire ↓ ⇒ diameter ↑)"),
        ],
        "fig10_diameter.csv",
        &["rewire%", "BFS depth", "time_ms", "MTEPS", "visitors"],
        &["rewire", "bfs_depth", "time_ms", "mteps", "visitors"],
    );

    for &rw in rewires {
        let gen = SmallWorldGenerator::new(n, degree).with_rewire(rw);
        let out = CommWorld::run(ranks, |ctx| {
            let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
            let g =
                DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            let visitors = ctx.all_reduce_sum(r.stats.visitors_executed);
            (r, visitors)
        });
        let (r, visitors) = &out[0];
        let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
        exp.row2(
            &csv_row![
                format!("{:.2}", rw * 100.0),
                r.max_level,
                ms(elapsed),
                havoq_bench::mteps(r.traversed_edges, elapsed),
                visitors
            ],
            &csv_row![
                rw,
                r.max_level,
                elapsed.as_secs_f64() * 1e3,
                r.traversed_edges as f64 / elapsed.as_secs_f64() / 1e6,
                visitors
            ],
        );
    }
    exp.finish(&[
        "Paper shape: BFS performance decreases as the depth (diameter) grows —",
        "deep traversals expose less parallelism per level, exactly the",
        "Θ(D + |E|/p + d_in) D-term of the Section VI-D analysis.",
    ]);
}
