//! Figure 9 (and the headline claim): effect of increasing external-memory
//! usage at fixed compute. Paper: 64 Hyperion nodes; growing the graph from
//! 34B edges (DRAM-resident) to 1T edges (10.8 TB on NAND Flash) costs only
//! 39 % of TEPS.
//!
//! Reproduction: ranks fixed; the graph doubles in scale while the page
//! cache stays at the size that fully holds the *smallest* graph — so the
//! largest run has 32x more data than "DRAM". We report TEPS relative to
//! the DRAM-resident baseline plus the cache hit rate that explains it.
//! Every external step also runs over the gap-compressed CSR at the same
//! cache budget (DESIGN.md §14): the `ext-comp` rows keep the hit rate
//! high for longer because the same pages hold several times more edges.

use havoq_bench::{csv_row, ms, pick, Experiment, StorageMode};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_nvram::cache::PageCacheConfig;
use havoq_nvram::device::DeviceProfile;
use havoq_nvram::IoConfig;

fn main() {
    let ranks: usize = pick(2, 4);
    let base_scale: u32 = pick(10, 12);
    let steps: u32 = pick(2, 5); // up to 32x

    // cache sized to fully hold the base graph's targets per rank
    let base_edges = RmatGenerator::graph500(base_scale).num_edges() * 2;
    let cache_pages = ((base_edges as usize * 8) / ranks / 4096).max(16);

    let mut exp = Experiment::begin(
        &[
            "Figure 9 — growing data on fixed compute: DRAM-resident baseline vs",
            &format!(
                "up to {}x larger graphs on simulated Fusion-io ({ranks} ranks, cache fixed",
                1 << steps
            ),
            "at the base graph's size)",
        ],
        "fig09_nvram_scale.csv",
        &[
            "data_x",
            "storage",
            "scale",
            "MTEPS",
            "% of DRAM",
            "hit_rate%",
            "B/edge",
            "io_stall_ms",
            "time_ms",
        ],
        &[
            "data_multiple",
            "storage",
            "scale",
            "mteps",
            "fraction_of_dram",
            "hit_rate",
            "bytes_per_edge",
            "io_stall_ms",
            "time_ms",
        ],
    );

    let mut dram_teps = 0.0f64;
    for step in 0..=steps {
        let scale = base_scale + step;
        let gen = RmatGenerator::graph500(scale);
        // the DRAM-resident baseline, then — for the external steps — raw
        // u64 targets and the gap-compressed pool at the same cache budget
        let storages: &[StorageMode] = if step == 0 {
            &[StorageMode::Mem]
        } else {
            &[StorageMode::Ext, StorageMode::ExtCompressed]
        };
        for &storage in storages {
            let cfg = storage.graph_config(
                DeviceProfile::fusion_io(),
                PageCacheConfig {
                    page_size: 4096,
                    capacity_pages: cache_pages,
                    shards: 8,
                    readahead_pages: 8,
                    // the paper's flash tiers only pay off under concurrent
                    // async I/O — run external steps with the async engine
                    io: IoConfig::asynchronous(),
                    ..PageCacheConfig::default()
                },
            );
            let out = CommWorld::run(ranks, |ctx| {
                let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                local.extend(
                    local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()),
                );
                let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, cfg);
                let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
                (r, g.csr().cache_stats(), g.csr().storage_snapshot())
            });
            let (r, cache, _) = &out[0];
            let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
            let teps = r.traversed_edges as f64 / elapsed.as_secs_f64();
            if step == 0 {
                dram_teps = teps;
            }
            let frac = 100.0 * teps / dram_teps;
            let hit =
                cache.map(|c| format!("{:.2}", 100.0 * c.hit_rate())).unwrap_or_else(|| "-".into());
            let io_stall = out.iter().map(|o| o.0.stats.io_stall).max().unwrap();
            let bytes_per_edge = {
                let (enc, edges) = out
                    .iter()
                    .filter_map(|o| o.2)
                    .fold((0u64, 0u64), |a, s| (a.0 + s.encoded_bytes, a.1 + s.num_edges));
                if edges == 0 {
                    8.0
                } else {
                    enc as f64 / edges as f64
                }
            };
            exp.row2(
                &csv_row![
                    1u64 << step,
                    storage.label(),
                    scale,
                    format!("{:.2}", teps / 1e6),
                    format!("{frac:.0}%"),
                    hit,
                    format!("{bytes_per_edge:.2}"),
                    ms(io_stall),
                    ms(elapsed)
                ],
                &csv_row![
                    1u64 << step,
                    storage.label(),
                    scale,
                    teps / 1e6,
                    teps / dram_teps,
                    cache.map(|c| c.hit_rate()).unwrap_or(1.0),
                    bytes_per_edge,
                    io_stall.as_secs_f64() * 1e3,
                    elapsed.as_secs_f64() * 1e3
                ],
            );
        }
    }
    exp.finish(&[
        "Paper shape: TEPS declines moderately as data grows past DRAM —",
        "32x more data cost only 39% of TEPS on Hyperion. Expect the same",
        "gradual curve here, driven by the cache hit rate column. The",
        "ext-comp rows stretch the fixed cache budget several-fold further",
        "(B/edge well under the raw 8), so their hit rate and TEPS decay",
        "more slowly as the data outgrows DRAM.",
    ]);
}
