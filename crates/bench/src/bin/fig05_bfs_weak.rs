//! Figure 5: weak scaling of asynchronous BFS (the paper's BG/P Intrepid
//! experiment, 2^18 vertices per core up to 131K cores, compared against
//! the best known Graph500 Intrepid result).
//!
//! Simulation translation: ranks are threads on one physical core, so
//! wall-clock TEPS measures total work, not parallel speedup. The
//! weak-scaling claims that survive the translation — and that this binary
//! reports — are (a) per-rank visitor and payload counts stay ~flat as the
//! world grows with the workload, and (b) the 3D-routed mailbox keeps the
//! channel count per rank far below p-1. TEPS per rank is also printed for
//! completeness, along with the byte-level wire columns the framed mailbox
//! exposes: wire KiB per rank, mean frame fill, and backpressure stalls.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::{CommWorld, TopologyKind};
use havoq_core::algorithms::bfs::{bfs, BfsConfig, UNREACHED};
use havoq_core::direction::{direction_bfs, DirectionMode};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_nvram::cache::PageCacheConfig;
use havoq_nvram::device::DeviceProfile;

/// splitmix64 finalizer — mixes one (vertex, level) pair into the
/// order-independent traversal fingerprint.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn main() {
    let per_rank_log2: u32 = pick(10, 12);
    let worlds: Vec<usize> = pick(vec![1, 4], vec![1, 2, 4, 8, 16, 32]);

    let mut exp = Experiment::begin(
        &[
            "Figure 5 — weak scaling of asynchronous BFS on RMAT graphs",
            &format!(
                "(2^{per_rank_log2} vertices per rank, edge factor 16, 3D-routed mailbox, 256 ghosts)"
            ),
        ],
        "fig05_bfs_weak.csv",
        &[
            "ranks", "scale", "MTEPS", "visitors/rank", "payload/rank", "max_channels", "depth",
            "KiB/rank", "fill%", "stalls",
        ],
        &[
            "ranks",
            "scale",
            "mteps",
            "visitors_per_rank",
            "payload_per_rank",
            "max_channels",
            "depth",
            "elapsed_ms",
            "wire_bytes_per_rank",
            "mean_frame_fill",
            "backpressure_stalls",
        ],
    );

    for &p in &worlds {
        let scale = per_rank_log2 + (p as f64).log2() as u32;
        let gen = RmatGenerator::graph500(scale);
        let mut cfg = BfsConfig::default();
        cfg.traversal.mailbox.topology = TopologyKind::Routed3D;

        let out = CommWorld::run(p, |ctx| {
            // each rank generates its slice of the directed edge list plus
            // the reversals of that slice; the union over ranks is the full
            // symmetrized list, and the build's distributed sort
            // redistributes it
            let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
            let g =
                DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
            let r = bfs(ctx, &g, VertexId(0), &cfg);
            let visitors = ctx.all_reduce_sum(r.stats.visitors_executed);
            let payload = ctx.all_reduce_sum(r.stats.payload_sent);
            // byte-level wire totals (frame-weighted fill, in ppm so the
            // u64 all-reduce carries the fraction)
            let bytes = ctx.all_reduce_sum(r.stats.bytes_sent);
            let stalls = ctx.all_reduce_sum(r.stats.backpressure_stalls);
            let frames = ctx.all_reduce_sum(r.stats.frames_sent);
            let fill_ppm = ctx.all_reduce_sum(
                (r.stats.mean_frame_fill * r.stats.frames_sent as f64 * 1e6) as u64,
            );
            (r, visitors, payload, bytes, stalls, frames, fill_ppm)
        });
        let (r, visitors, payload, bytes, stalls, frames, fill_ppm) = &out[0];
        // channel reduction: max distinct destinations any rank used on the
        // traversal's transport (3D routing keeps this ~3 * p^(1/3))
        let max_channels = r.transport.max_channels_used();
        let elapsed = out.iter().map(|(r, ..)| r.elapsed).max().unwrap();
        let mteps = r.traversed_edges as f64 / elapsed.as_secs_f64() / 1e6;
        let fill = if *frames == 0 { 0.0 } else { *fill_ppm as f64 / 1e6 / *frames as f64 };
        exp.row2(
            &csv_row![
                p,
                scale,
                format!("{mteps:.2}"),
                visitors / p as u64,
                payload / p as u64,
                max_channels,
                r.max_level,
                bytes / p as u64 / 1024,
                format!("{:.1}", fill * 100.0),
                stalls
            ],
            &csv_row![
                p,
                scale,
                mteps,
                visitors / p as u64,
                payload / p as u64,
                max_channels,
                r.max_level,
                elapsed.as_secs_f64() * 1e3,
                bytes / p as u64,
                fill,
                stalls
            ],
        );
    }
    exp.finish(&[
        "Paper shape: near-linear weak scaling to 131K cores; our per-rank",
        "visitor/payload columns stay flat (the machine-independent analogue),",
        "while single-core wall-clock grows with total work as expected. The",
        "wire columns show what the framed mailbox actually shipped: bytes per",
        "rank track payload per rank, and the mean frame fill stays high while",
        "batch_size (not frame_bytes) is the binding flush trigger.",
    ]);

    threads_speedup_table(pick(10, 12));
    direction_table(pick(10, 12));
}

/// Companion table: direction-optimizing BFS (DESIGN.md §13) on the p=2
/// RMAT workload — the per-level `dir=top|bottom` trace of the Beamer
/// heuristic (`--direction` overrides the policy) with before/after TEPS
/// against forced top-down. Level fingerprints must be bit-identical
/// between the two schedules, asserted in-binary.
fn direction_table(scale: u32) {
    let p = 2usize;
    let mode = match havoq_bench::direction() {
        Some(DirectionMode::Async) | None => DirectionMode::Auto,
        Some(m) => m,
    };
    let gen = RmatGenerator::graph500(scale);

    let out = CommWorld::run(p, |ctx| {
        let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
        local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
        let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
        let run_one = |m: DirectionMode| {
            let cfg = BfsConfig::default().with_direction(m);
            let t = std::time::Instant::now();
            let run = direction_bfs(ctx, &g, VertexId(0), &cfg);
            let secs = ctx.all_reduce_max(t.elapsed().as_nanos() as u64) as f64 / 1e9;
            let mut fp = 0u64;
            for v in g.local_vertices().filter(|&v| g.is_master(v)) {
                let l = run.result.local_state[g.local_index(v)].length;
                if l != UNREACHED {
                    fp = fp.wrapping_add(mix(v.0 ^ mix(l.wrapping_add(1))));
                }
            }
            (ctx.all_reduce_sum(fp), run, secs)
        };
        let (top_fp, top_run, top_secs) = run_one(DirectionMode::TopDown);
        let (fp, run, secs) = run_one(mode);
        assert_eq!(fp, top_fp, "{mode:?} level fingerprint diverged from forced top-down");
        (top_run, top_secs, run, secs)
    });
    let (top_run, top_secs, run, secs) = &out[0];

    let mut exp = Experiment::begin(
        &[
            "Figure 5 companion — direction-optimizing BFS",
            &format!("(p={p}, 2^{scale} vertices, {mode:?} vs forced top-down)"),
        ],
        "fig05_bfs_direction.csv",
        &["level", "dir", "frontier", "frontier_edges", "inspected", "candidates"],
        &["level", "dir", "frontier", "frontier_edges", "inspected", "candidates"],
    );
    for t in &run.trace {
        exp.row(&csv_row![
            t.level,
            t.dir.label(),
            t.frontier,
            t.frontier_edges,
            t.inspected,
            t.candidates
        ]);
    }
    let traversed = run.result.traversed_edges;
    let top_mteps = traversed as f64 / top_secs.max(1e-12) / 1e6;
    let mode_mteps = traversed as f64 / secs.max(1e-12) / 1e6;
    let ratio = top_run.edges_inspected as f64 / run.edges_inspected.max(1) as f64;
    let notes = [
        format!(
            "edge inspections: top-down {} vs {mode:?} {} ({ratio:.2}x fewer)",
            top_run.edges_inspected, run.edges_inspected
        ),
        format!("TEPS before/after: {top_mteps:.2} -> {mode_mteps:.2} MTEPS"),
        "level fingerprints bit-identical between schedules (asserted in-binary)".to_string(),
    ];
    let note_refs: Vec<&str> = notes.iter().map(String::as_str).collect();
    exp.finish(&note_refs);
}

/// Companion table: intra-rank worker-pool speedup (DESIGN.md §11) on the
/// p=2 RMAT workload. The graph is held semi-externally on the simulated
/// Fusion-io device at *real* (unscaled) page latency with a tight cache
/// budget, so every `visit` pays demand-paged adjacency reads that block
/// like real I/O — the latency the worker pool exists to overlap, exactly
/// the paper's use of multithreading to keep NAND busy. The BFS level
/// fingerprint must be bit-identical at every thread count, and a
/// fault-free run must keep every integrity counter at zero.
fn threads_speedup_table(scale: u32) {
    let p = 2usize;
    let thread_counts = [1usize, 2, 4];
    let gen = RmatGenerator::graph500(scale);
    // tight DRAM:data ratio so demand paging dominates per-visit cost
    let per_rank_bytes = (gen.num_edges() as usize * 2 * 8) / p;
    let cache_pages = (per_rank_bytes / 4096 / 4).max(16);

    let mut exp = Experiment::begin(
        &[
            "Figure 5 companion — intra-rank parallel visitor execution",
            &format!("(p={p}, 2^{scale} vertices, semi-external adjacency on simulated Fusion-io)"),
        ],
        "fig05_bfs_threads.csv",
        &["threads", "MTEPS", "speedup", "io_stall_ms", "time_ms"],
        &["threads", "mteps", "speedup", "io_stall_ms", "time_ms"],
    );

    let mut baseline = None;
    let mut fingerprints = Vec::new();
    for &threads in &thread_counts {
        let cfg = GraphConfig::external(
            DeviceProfile::fusion_io_realtime(),
            PageCacheConfig {
                page_size: 4096,
                capacity_pages: cache_pages,
                shards: 8,
                // demand paging only: readahead would serialize fills into
                // long single-worker bursts, which is exactly the latency
                // the worker pool is supposed to overlap instead
                readahead_pages: 0,
                ..PageCacheConfig::default()
            },
        );
        let mut bcfg = BfsConfig::default();
        bcfg.traversal.threads = threads;
        let out = CommWorld::run(p, |ctx| {
            let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
            let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, cfg);
            let r = bfs(ctx, &g, VertexId(0), &bcfg);
            let mut fp = 0u64;
            for v in g.local_vertices().filter(|&v| g.is_master(v)) {
                let l = r.local_state[g.local_index(v)].length;
                if l != UNREACHED {
                    fp = fp.wrapping_add(mix(v.0 ^ mix(l.wrapping_add(1))));
                }
            }
            (r, fp)
        });
        let elapsed = out.iter().map(|(r, _)| r.elapsed).max().unwrap();
        let io_stall = out.iter().map(|(r, _)| r.stats.io_stall).max().unwrap();
        let traversed = out[0].0.traversed_edges;
        for (r, _) in &out {
            assert_eq!(
                (r.stats.corrupt_frames_detected, r.stats.nacks_sent, r.stats.retransmits),
                (0, 0, 0),
                "fault-free run must not touch the recovery path (threads={threads})"
            );
        }
        fingerprints.push(out.iter().fold(0u64, |acc, (_, fp)| acc.wrapping_add(*fp)));
        let base = *baseline.get_or_insert(elapsed);
        let speedup = base.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
        exp.row2(
            &csv_row![
                threads,
                havoq_bench::mteps(traversed, elapsed),
                format!("{speedup:.2}x"),
                ms(io_stall),
                ms(elapsed)
            ],
            &csv_row![
                threads,
                traversed as f64 / elapsed.as_secs_f64() / 1e6,
                speedup,
                io_stall.as_secs_f64() * 1e3,
                elapsed.as_secs_f64() * 1e3
            ],
        );
        if threads == *thread_counts.last().unwrap() && speedup < 1.5 {
            eprintln!(
                "WARNING: threads={threads} speedup {speedup:.2}x below the 1.5x target \
                 (oversubscribed or low-core host?)"
            );
        }
    }
    for (i, fp) in fingerprints.iter().enumerate() {
        assert_eq!(
            *fp, fingerprints[0],
            "threads={} changed the BFS level assignment",
            thread_counts[i]
        );
    }
    exp.finish(&[
        "The worker pool overlaps demand page fills across visitors inside",
        "each rank, so wall clock drops as threads grow while the traversal",
        "result (the level fingerprint) and the wire integrity counters are",
        "untouched: parallelism lives strictly between the coordinator's",
        "mailbox interactions.",
    ]);
}
