//! Figure 5: weak scaling of asynchronous BFS (the paper's BG/P Intrepid
//! experiment, 2^18 vertices per core up to 131K cores, compared against
//! the best known Graph500 Intrepid result).
//!
//! Simulation translation: ranks are threads on one physical core, so
//! wall-clock TEPS measures total work, not parallel speedup. The
//! weak-scaling claims that survive the translation — and that this binary
//! reports — are (a) per-rank visitor and payload counts stay ~flat as the
//! world grows with the workload, and (b) the 3D-routed mailbox keeps the
//! channel count per rank far below p-1. TEPS per rank is also printed for
//! completeness, along with the byte-level wire columns the framed mailbox
//! exposes: wire KiB per rank, mean frame fill, and backpressure stalls.

use havoq_bench::{csv_row, pick, Experiment};
use havoq_comm::{CommWorld, TopologyKind};
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;

fn main() {
    let per_rank_log2: u32 = pick(10, 12);
    let worlds: Vec<usize> = pick(vec![1, 4], vec![1, 2, 4, 8, 16, 32]);

    let mut exp = Experiment::begin(
        &[
            "Figure 5 — weak scaling of asynchronous BFS on RMAT graphs",
            &format!(
                "(2^{per_rank_log2} vertices per rank, edge factor 16, 3D-routed mailbox, 256 ghosts)"
            ),
        ],
        "fig05_bfs_weak.csv",
        &[
            "ranks", "scale", "MTEPS", "visitors/rank", "payload/rank", "max_channels", "depth",
            "KiB/rank", "fill%", "stalls",
        ],
        &[
            "ranks",
            "scale",
            "mteps",
            "visitors_per_rank",
            "payload_per_rank",
            "max_channels",
            "depth",
            "elapsed_ms",
            "wire_bytes_per_rank",
            "mean_frame_fill",
            "backpressure_stalls",
        ],
    );

    for &p in &worlds {
        let scale = per_rank_log2 + (p as f64).log2() as u32;
        let gen = RmatGenerator::graph500(scale);
        let mut cfg = BfsConfig::default();
        cfg.traversal.mailbox.topology = TopologyKind::Routed3D;

        let out = CommWorld::run(p, |ctx| {
            // each rank generates its slice of the directed edge list plus
            // the reversals of that slice; the union over ranks is the full
            // symmetrized list, and the build's distributed sort
            // redistributes it
            let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
            let g =
                DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default());
            let r = bfs(ctx, &g, VertexId(0), &cfg);
            let visitors = ctx.all_reduce_sum(r.stats.visitors_executed);
            let payload = ctx.all_reduce_sum(r.stats.payload_sent);
            // byte-level wire totals (frame-weighted fill, in ppm so the
            // u64 all-reduce carries the fraction)
            let bytes = ctx.all_reduce_sum(r.stats.bytes_sent);
            let stalls = ctx.all_reduce_sum(r.stats.backpressure_stalls);
            let frames = ctx.all_reduce_sum(r.stats.frames_sent);
            let fill_ppm = ctx.all_reduce_sum(
                (r.stats.mean_frame_fill * r.stats.frames_sent as f64 * 1e6) as u64,
            );
            (r, visitors, payload, bytes, stalls, frames, fill_ppm)
        });
        let (r, visitors, payload, bytes, stalls, frames, fill_ppm) = &out[0];
        // channel reduction: max distinct destinations any rank used on the
        // traversal's transport (3D routing keeps this ~3 * p^(1/3))
        let max_channels = r.transport.max_channels_used();
        let elapsed = out.iter().map(|(r, ..)| r.elapsed).max().unwrap();
        let mteps = r.traversed_edges as f64 / elapsed.as_secs_f64() / 1e6;
        let fill = if *frames == 0 { 0.0 } else { *fill_ppm as f64 / 1e6 / *frames as f64 };
        exp.row2(
            &csv_row![
                p,
                scale,
                format!("{mteps:.2}"),
                visitors / p as u64,
                payload / p as u64,
                max_channels,
                r.max_level,
                bytes / p as u64 / 1024,
                format!("{:.1}", fill * 100.0),
                stalls
            ],
            &csv_row![
                p,
                scale,
                mteps,
                visitors / p as u64,
                payload / p as u64,
                max_channels,
                r.max_level,
                elapsed.as_secs_f64() * 1e3,
                bytes / p as u64,
                fill,
                stalls
            ],
        );
    }
    exp.finish(&[
        "Paper shape: near-linear weak scaling to 131K cores; our per-rank",
        "visitor/payload columns stay flat (the machine-independent analogue),",
        "while single-core wall-clock grows with total work as expected. The",
        "wire columns show what the framed mailbox actually shipped: bytes per",
        "rank track payload per rank, and the mean frame fill stays high while",
        "batch_size (not frame_bytes) is the binding flush trigger.",
    ]);
}
