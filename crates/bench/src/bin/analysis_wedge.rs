//! Wedge-sampling vs exact triangle counting (the extension the paper
//! names via reference [13]): accuracy and cost of the sampling estimator
//! as the sample budget grows, against the exact Algorithm 6/7 count.

use havoq_bench::{csv_row, ms, print_header, print_row, Csv};
use havoq_comm::CommWorld;
use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig};
use havoq_core::algorithms::wedge::approx_clustering;
use havoq_core::queue::TraversalConfig;
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;

fn main() {
    let quick = havoq_bench::quick();
    let scale: u32 = if quick { 9 } else { 12 };
    let ranks: usize = if quick { 2 } else { 4 };
    let budgets: &[u64] =
        if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 100_000, 1_000_000] };

    let gen = RmatGenerator::graph500(scale);
    let edges = gen.symmetric_edges(42);

    println!("Wedge sampling vs exact triangle count (RMAT scale {scale}, {ranks} ranks)\n");

    // exact baseline
    let exact = CommWorld::run(ranks, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let r = triangle_count(ctx, &g, &TriangleConfig::default());
        (r.triangles, r.elapsed, ctx.all_reduce_sum(r.stats.visitors_executed))
    });
    let (exact_count, exact_time, exact_visitors) = exact[0];
    println!("exact: {exact_count} triangles, {exact_visitors} visitors, {exact_time:?}\n");

    print_header(&["samples", "estimate", "rel_err%", "visitors", "time_ms", "speedup"]);
    let mut csv = Csv::create(
        "analysis_wedge.csv",
        &["samples", "estimate", "relative_error", "visitors", "time_ms", "speedup_vs_exact"],
    );
    for &budget in budgets {
        let out = CommWorld::run(ranks, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let r = approx_clustering(ctx, &g, budget, 7, &TraversalConfig::default());
            (r, ctx.all_reduce_sum(r.stats.visitors_executed))
        });
        let (r, visitors) = &out[0];
        let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
        let rel = (r.triangles_estimate - exact_count as f64).abs() / exact_count as f64;
        print_row(&csv_row![
            budget,
            format!("{:.0}", r.triangles_estimate),
            format!("{:.2}", rel * 100.0),
            visitors,
            ms(elapsed),
            format!("{:.1}x", exact_time.as_secs_f64() / elapsed.as_secs_f64())
        ]);
        csv.row(&csv_row![
            budget,
            r.triangles_estimate,
            rel,
            visitors,
            elapsed.as_secs_f64() * 1e3,
            exact_time.as_secs_f64() / elapsed.as_secs_f64()
        ]);
    }
    csv.finish();
    println!("\nExpected: error shrinks ~1/sqrt(samples); small budgets estimate");
    println!("hub-dominated triangle counts orders of magnitude faster than the");
    println!("exact O(|E| * d_max) traversal.");
}
