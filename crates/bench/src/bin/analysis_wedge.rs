//! Wedge-sampling vs exact triangle counting (the extension the paper
//! names via reference [13]): accuracy and cost of the sampling estimator
//! as the sample budget grows, against the exact Algorithm 6/7 count.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig};
use havoq_core::algorithms::wedge::approx_clustering;
use havoq_core::queue::TraversalConfig;
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;

fn main() {
    let scale: u32 = pick(9, 12);
    let ranks: usize = pick(2, 4);
    let budgets: &[u64] = pick(&[1_000, 10_000][..], &[1_000, 10_000, 100_000, 1_000_000][..]);

    let gen = RmatGenerator::graph500(scale);
    let edges = gen.symmetric_edges(42);

    println!("Wedge sampling vs exact triangle count (RMAT scale {scale}, {ranks} ranks)\n");

    // exact baseline
    let exact = CommWorld::run(ranks, |ctx| {
        let g = DistGraph::build_replicated(
            ctx,
            &edges,
            PartitionStrategy::EdgeList,
            GraphConfig::default(),
        );
        let r = triangle_count(ctx, &g, &TriangleConfig::default());
        (r.triangles, r.elapsed, ctx.all_reduce_sum(r.stats.visitors_executed))
    });
    let (exact_count, exact_time, exact_visitors) = exact[0];

    let mut exp = Experiment::begin(
        &[&format!("exact: {exact_count} triangles, {exact_visitors} visitors, {exact_time:?}")],
        "analysis_wedge.csv",
        &["samples", "estimate", "rel_err%", "visitors", "time_ms", "speedup"],
        &["samples", "estimate", "relative_error", "visitors", "time_ms", "speedup_vs_exact"],
    );
    for &budget in budgets {
        let out = CommWorld::run(ranks, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let r = approx_clustering(ctx, &g, budget, 7, &TraversalConfig::default());
            (r, ctx.all_reduce_sum(r.stats.visitors_executed))
        });
        let (r, visitors) = &out[0];
        let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
        let rel = (r.triangles_estimate - exact_count as f64).abs() / exact_count as f64;
        exp.row2(
            &csv_row![
                budget,
                format!("{:.0}", r.triangles_estimate),
                format!("{:.2}", rel * 100.0),
                visitors,
                ms(elapsed),
                format!("{:.1}x", exact_time.as_secs_f64() / elapsed.as_secs_f64())
            ],
            &csv_row![
                budget,
                r.triangles_estimate,
                rel,
                visitors,
                elapsed.as_secs_f64() * 1e3,
                exact_time.as_secs_f64() / elapsed.as_secs_f64()
            ],
        );
    }
    exp.finish(&[
        "Expected: error shrinks ~1/sqrt(samples); small budgets estimate",
        "hub-dominated triangle counts orders of magnitude faster than the",
        "exact O(|E| * d_max) traversal.",
    ]);
}
