//! Figure 11: effect of maximum vertex degree on triangle counting. Paper:
//! Preferential Attachment graphs with a random-rewire step, fixed size
//! (2^28 vertices, 2^32 edges) and fixed compute (4096 cores); less rewire
//! ⇒ bigger hubs ⇒ slower triangle counting (the d_out_max factor of the
//! Section VI-D bound).

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig};
use havoq_graph::analysis::DegreeCensus;
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::pa::PaGenerator;

fn main() {
    let ranks: usize = pick(2, 4);
    let n: u64 = pick(1 << 10, 1 << 13);
    let m_per_v = 8u64;
    let rewires: &[f64] = pick(&[0.0, 0.5][..], &[0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 1.0][..]);

    let mut exp = Experiment::begin(
        &[
            "Figure 11 — max-degree effects on triangle counting (Preferential",
            &format!("Attachment, {n} vertices, {m_per_v} edges/vertex, fixed {ranks} ranks)"),
        ],
        "fig11_maxdegree.csv",
        &["rewire%", "max_degree", "triangles", "time_ms", "visitors"],
        &["rewire", "max_degree", "triangles", "time_ms", "visitors"],
    );

    for &rw in rewires {
        let gen = PaGenerator::new(n, m_per_v).with_rewire(rw);
        let edges = gen.symmetric_edges(42);
        let max_degree = DegreeCensus::from_edges(n, edges.iter().copied()).max_degree();
        let out = CommWorld::run(ranks, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            let r = triangle_count(ctx, &g, &TriangleConfig::default());
            let visitors = ctx.all_reduce_sum(r.stats.visitors_executed);
            (r.triangles, r.elapsed, visitors)
        });
        let (tri, _, visitors) = out[0];
        let elapsed = out.iter().map(|o| o.1).max().unwrap();
        exp.row2(
            &csv_row![format!("{:.0}", rw * 100.0), max_degree, tri, ms(elapsed), visitors],
            &csv_row![rw, max_degree, tri, elapsed.as_secs_f64() * 1e3, visitors],
        );
    }
    exp.finish(&[
        "Paper shape: runtime falls as rewiring dilutes the hubs — triangle",
        "counting is bounded by O(|E| * d_out_max / p + d_in_max), so the",
        "max-degree column should track the time column.",
    ]);
}
