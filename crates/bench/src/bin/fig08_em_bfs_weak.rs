//! Figure 8: weak scaling of distributed *external memory* BFS (paper:
//! Hyperion-DIT, 17B edges per compute node on Fusion-io NAND Flash; the
//! largest graph has over one trillion edges).
//!
//! Reproduction: CSR edge targets live behind the user-space page cache on
//! the simulated Fusion-io device; the cache budget is a fixed fraction of
//! the per-rank edge bytes, so weak scaling keeps the DRAM:NVRAM ratio
//! constant like the paper's fixed 24 GB DRAM / 169 GB flash nodes.
//!
//! Each world size runs five times at an identical cache budget:
//! synchronous demand paging, the asynchronous I/O engine (background
//! readahead + write-behind), a sync run with the wire CRC +
//! retransmit-buffer path disabled, and sync/async runs over the
//! gap-compressed CSR (DESIGN.md §14). The paper's Section II-B point is
//! that NAND only delivers its bandwidth under highly concurrent
//! asynchronous I/O: the async rows must show lower per-rank I/O stall,
//! and the BFS level assignment must be bit-identical across all modes.
//! The `sync-nocrc` row prices the integrity layer on a fault-free network
//! — framing CRCs plus the sender-side retransmit buffer should cost well
//! under ~5% of the traversal wall clock. The `comp-*` rows must fit at
//! least 2× the edges per cache byte (encoded ≤ 4 B/edge vs the raw 8)
//! with the exact same BFS levels. `--storage {mem,ext,ext-compressed}`
//! restricts the matrix to one backend.

use std::time::Duration;

use havoq_bench::{csv_row, ms, overhead_pct, pick, Experiment, StorageMode};
use havoq_comm::codec::FRAME_CRC_BYTES;
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig, UNREACHED};
use havoq_core::CheckpointSpec;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_nvram::cache::PageCacheConfig;
use havoq_nvram::device::DeviceProfile;
use havoq_nvram::{IoConfig, IoMode};

/// splitmix64 finalizer — mixes one (vertex, level) pair into the
/// order-independent traversal fingerprint.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn main() {
    let per_rank_log2: u32 = pick(10, 12);
    let worlds: Vec<usize> = pick(vec![1, 4], vec![1, 2, 4, 8, 16]);
    // DRAM:data ratio ~ 1:8, like 24 GB DRAM vs 169 GB flash in the paper
    let cache_fraction = 8usize;
    let ckpt_every = havoq_bench::checkpoint_every();
    let ckpt_banner = match ckpt_every {
        Some(e) => format!("checkpointing every {e} visitors/rank into the NVRAM store)"),
        None => "checkpointing off — pass --checkpoint-every N to measure it)".to_string(),
    };

    let mut exp = Experiment::begin(
        &[
            "Figure 8 — weak scaling of distributed external-memory BFS",
            &format!(
                "(2^{per_rank_log2} vertices/rank on simulated Fusion-io, cache = data/{cache_fraction},"
            ),
            "sync demand paging vs async readahead + write-behind,",
            "plus a sync row with the wire CRC + retransmit buffer off,",
            "plus gap-compressed CSR rows at the same cache budget,",
            &ckpt_banner,
        ],
        "fig08_em_bfs_weak.csv",
        &[
            "ranks",
            "mode",
            "scale",
            "MTEPS",
            "hit_rate%",
            "dev_reads",
            "io_stall_ms",
            "avg_qd",
            "B/edge",
            "decodes",
            "ckpt_ovh%",
            "time_ms",
        ],
        &[
            "ranks",
            "mode",
            "scale",
            "mteps",
            "hit_rate",
            "device_reads",
            "io_stall_ms",
            "avg_queue_depth",
            "bytes_per_edge",
            "adj_decodes",
            "checkpoint_overhead_pct",
            "time_ms",
        ],
    );

    for &p in &worlds {
        let scale = per_rank_log2 + (p as f64).log2() as u32;
        let gen = RmatGenerator::graph500(scale);
        let per_rank_bytes = (gen.num_edges() as usize * 2 * 8) / p;
        let cache_pages = (per_rank_bytes / 4096 / cache_fraction).max(8);

        let mut fingerprints = Vec::new();
        let mut mode_names = Vec::new();
        let mut stalls = Vec::new();
        let mut times = Vec::new();
        let mut wire_bytes = Vec::new();
        let mut frames = Vec::new();
        let mut comp_snap = None;
        // the third pass reruns sync demand paging with frame integrity
        // (CRC trailer + retransmit buffer) disabled, pricing the
        // zero-fault overhead of the protection path; the comp-* passes
        // rerun sync/async over the gap-compressed pool at the *same*
        // capacity_pages, so the hit-rate delta is purely storage density
        let all_modes = [
            ("sync", IoConfig::default(), true, StorageMode::Ext),
            ("async", IoConfig::asynchronous(), true, StorageMode::Ext),
            ("sync-nocrc", IoConfig::default(), false, StorageMode::Ext),
            ("comp-sync", IoConfig::default(), true, StorageMode::ExtCompressed),
            ("comp-async", IoConfig::asynchronous(), true, StorageMode::ExtCompressed),
        ];
        let storage_filter = havoq_bench::storage();
        let modes: Vec<_> = match storage_filter {
            None => all_modes.to_vec(),
            Some(StorageMode::Mem) => {
                vec![("mem", IoConfig::default(), true, StorageMode::Mem)]
            }
            Some(m) => all_modes.iter().copied().filter(|r| r.3 == m).collect(),
        };
        // index-based cross-mode comparisons only make sense on the full
        // built-in matrix
        let full_matrix = storage_filter.is_none();
        for (mode, io, integrity, storage) in modes {
            let cfg = storage.graph_config(
                DeviceProfile::fusion_io(),
                PageCacheConfig {
                    page_size: 4096,
                    capacity_pages: cache_pages,
                    shards: 8,
                    readahead_pages: 8,
                    io,
                    ..PageCacheConfig::default()
                },
            );

            let out = CommWorld::run(p, |ctx| {
                let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                local.extend(
                    local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()),
                );
                let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, cfg);
                let mut bcfg = BfsConfig::default();
                bcfg.traversal.mailbox = bcfg.traversal.mailbox.with_integrity(integrity);
                if let Some(every) = ckpt_every {
                    bcfg = bcfg.with_checkpoint(CheckpointSpec::default().with_every(every));
                }
                let r = bfs(ctx, &g, VertexId(0), &bcfg);
                // order-independent fingerprint of the BFS level assignment:
                // commutative sum over this rank's masters
                let mut fp = 0u64;
                for v in g.local_vertices().filter(|&v| g.is_master(v)) {
                    let l = r.local_state[g.local_index(v)].length;
                    if l != UNREACHED {
                        fp = fp.wrapping_add(mix(v.0 ^ mix(l.wrapping_add(1))));
                    }
                }
                let cache = g.csr().cache_stats().unwrap_or_default();
                let dev_reads = g.csr().cache().map(|c| c.device().stats().reads).unwrap_or(0);
                let io = g.csr().io_stats().unwrap_or_default();
                let snap = g.csr().storage_snapshot();
                (r, cache, dev_reads, io, fp, snap)
            });
            let (r, cache, dev_reads, _, _, _) = &out[0];
            let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
            // per-rank I/O stall: the slowest rank gates the traversal
            let io_stall = out.iter().map(|o| o.0.stats.io_stall).max().unwrap();
            let avg_qd = out.iter().map(|o| o.3.avg_queue_depth()).sum::<f64>() / p as f64;
            // checkpoint overhead: the slowest rank's cut+persist time
            // over the traversal wall clock
            let ck_time = out.iter().map(|o| o.0.stats.checkpoint_time).max().unwrap();
            let ck_ovh = overhead_pct(ck_time, elapsed);
            fingerprints.push(out.iter().fold(0u64, |acc, o| acc.wrapping_add(o.4)));
            mode_names.push(mode);
            stalls.push(io_stall);
            times.push(elapsed);
            wire_bytes.push(out.iter().map(|o| o.0.stats.bytes_sent).sum::<u64>());
            frames.push(out.iter().map(|o| o.0.stats.frames_sent).sum::<u64>());
            // aggregate compression across ranks: pool bytes and edge counts
            // sum, decode counters sum
            let snap_total = out.iter().filter_map(|o| o.5).fold(
                None::<havoq_graph::csr::CsrStorageSnapshot>,
                |acc, s| {
                    let mut t = acc.unwrap_or_default();
                    t.num_edges += s.num_edges;
                    t.encoded_bytes += s.encoded_bytes;
                    t.raw_bytes += s.raw_bytes;
                    t.adj_decodes += s.adj_decodes;
                    t.adj_decoded_bytes += s.adj_decoded_bytes;
                    Some(t)
                },
            );
            let bytes_per_edge = snap_total.map(|s| s.bytes_per_edge()).unwrap_or(8.0);
            let decodes = snap_total.map(|s| s.adj_decodes).unwrap_or(0);
            if matches!(storage, StorageMode::ExtCompressed) && comp_snap.is_none() {
                comp_snap = snap_total;
            }

            exp.row2(
                &csv_row![
                    p,
                    mode,
                    scale,
                    havoq_bench::mteps(r.traversed_edges, elapsed),
                    format!("{:.2}", 100.0 * cache.hit_rate()),
                    dev_reads,
                    ms(io_stall),
                    format!("{avg_qd:.2}"),
                    format!("{bytes_per_edge:.2}"),
                    decodes,
                    format!("{ck_ovh:.2}"),
                    ms(elapsed)
                ],
                &csv_row![
                    p,
                    mode,
                    scale,
                    r.traversed_edges as f64 / elapsed.as_secs_f64() / 1e6,
                    cache.hit_rate(),
                    dev_reads,
                    io_stall.as_secs_f64() * 1e3,
                    avg_qd,
                    bytes_per_edge,
                    decodes,
                    ck_ovh,
                    elapsed.as_secs_f64() * 1e3
                ],
            );

            if ckpt_every.is_some() {
                let epochs: u64 = out.iter().map(|o| o.0.stats.checkpoints_written).sum();
                let bytes: u64 = out.iter().map(|o| o.0.stats.checkpoint_bytes).sum();
                println!(
                    "    checkpoints: {epochs} rank-epochs, {} KiB persisted, \
                     overhead {ck_ovh:.2}% of the traversal",
                    bytes / 1024
                );
            }

            if matches!(io.mode, IoMode::Async) {
                // merged queue-depth histogram across ranks
                let mut hist = havoq_util::Histogram::new();
                for o in &out {
                    hist.merge(&o.3.depth_hist);
                }
                let line: Vec<String> = hist
                    .buckets()
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(d, &c)| format!("{d}:{c}"))
                    .collect();
                println!("    queue depth histogram (depth:samples)  {}", line.join(" "));
            }
        }

        // storage/IO/integrity modes must not change the BFS level
        // assignment — one bit-identical fingerprint per world size
        for (i, fp) in fingerprints.iter().enumerate() {
            assert_eq!(
                fingerprints[0], *fp,
                "mode {} changed the BFS level assignment at p={p} vs {}",
                mode_names[i], mode_names[0]
            );
        }
        // the compressed pool must fit at least 2× the edges per cache
        // byte at this (identical) cache budget
        if let Some(snap) = comp_snap {
            assert!(
                snap.compression_ratio() >= 2.0,
                "compressed CSR below 2x edges per cache byte at p={p}: \
                 {:.2} B/edge ({:.2}x)",
                snap.bytes_per_edge(),
                snap.compression_ratio()
            );
            println!(
                "    compressed pool at p={p}: {:.2} B/edge, {:.2}x edges per cache byte, \
                 {} slice decodes",
                snap.bytes_per_edge(),
                snap.compression_ratio(),
                snap.adj_decodes
            );
        }
        if !full_matrix {
            continue;
        }
        // Wall-clock comparison, so only warn: on a loaded or low-core
        // machine the async run can legitimately stall longer, and the CSV
        // rows already carry the measurement for the figure.
        if stalls[0] > Duration::ZERO && stalls[1] >= stalls[0] {
            eprintln!(
                "WARNING: async I/O did not lower per-rank stall at p={p}: \
                 sync {:?} vs async {:?} (noisy machine?)",
                stalls[0], stalls[1]
            );
        }
        // zero-fault price of the integrity layer. The wire-byte figure is
        // exact and computed from the CRC-on run alone: every sealed frame
        // carries a 4-byte trailer, so overhead = trailer bytes over the
        // bytes the frames would occupy without them. (A cross-run byte
        // delta would be noise — the async traversal's frame population is
        // schedule-dependent between runs.) The wall-clock delta vs the
        // CRC-off run stays a noisy estimate on an oversubscribed host, so
        // it is reported but only warned about.
        let (crc_on, crc_off) = (times[0], times[2]);
        let time_ovh = if crc_off > Duration::ZERO {
            100.0 * (crc_on.as_secs_f64() - crc_off.as_secs_f64()) / crc_off.as_secs_f64()
        } else {
            0.0
        };
        let crc_bytes = frames[0] * FRAME_CRC_BYTES as u64;
        let byte_ovh = if wire_bytes[0] > crc_bytes {
            100.0 * crc_bytes as f64 / (wire_bytes[0] - crc_bytes) as f64
        } else {
            0.0
        };
        println!(
            "    CRC + retransmit-buffer overhead at p={p} (sync, zero faults): \
             {byte_ovh:+.2}% wire bytes ({} CRC trailer bytes over {} frames), \
             {time_ovh:+.2}% wall clock ({} ms on vs {} ms off)",
            crc_bytes,
            frames[0],
            ms(crc_on),
            ms(crc_off)
        );
        if byte_ovh > 5.0 {
            eprintln!("WARNING: CRC wire overhead {byte_ovh:.2}% exceeds the ~5% budget at p={p}");
        }
        if time_ovh > 5.0 {
            eprintln!(
                "note: wall-clock delta {time_ovh:+.2}% at p={p} \
                 (scheduling noise dominates on a shared host; the wire figure is exact)"
            );
        }
    }
    exp.finish(&[
        "Paper shape: weak scaling continues into external memory; the page",
        "cache (fed by the vertex-ordered visitor queue) absorbs most accesses,",
        "so adding ranks+data keeps per-rank throughput roughly flat. The async",
        "rows hide the device behind readahead + write-behind: same BFS levels,",
        "lower io_stall_ms at an identical cache budget. The sync-nocrc rows",
        "price the integrity layer on a clean network: identical BFS levels,",
        "CRC + retransmit-buffer overhead well under ~5%. The comp-* rows pack",
        "the same edges into gap bytes at the same cache budget: >=2x edges per",
        "cache byte, higher hit rate, fewer device reads, same BFS levels.",
    ]);
}
