//! Figure 8: weak scaling of distributed *external memory* BFS (paper:
//! Hyperion-DIT, 17B edges per compute node on Fusion-io NAND Flash; the
//! largest graph has over one trillion edges).
//!
//! Reproduction: CSR edge targets live behind the user-space page cache on
//! the simulated Fusion-io device; the cache budget is a fixed fraction of
//! the per-rank edge bytes, so weak scaling keeps the DRAM:NVRAM ratio
//! constant like the paper's fixed 24 GB DRAM / 169 GB flash nodes.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_nvram::cache::PageCacheConfig;
use havoq_nvram::device::DeviceProfile;

fn main() {
    let per_rank_log2: u32 = pick(10, 12);
    let worlds: Vec<usize> = pick(vec![1, 4], vec![1, 2, 4, 8, 16]);
    // DRAM:data ratio ~ 1:8, like 24 GB DRAM vs 169 GB flash in the paper
    let cache_fraction = 8usize;

    let mut exp = Experiment::begin(
        &[
            "Figure 8 — weak scaling of distributed external-memory BFS",
            &format!(
                "(2^{per_rank_log2} vertices/rank on simulated Fusion-io, cache = data/{cache_fraction})"
            ),
        ],
        "fig08_em_bfs_weak.csv",
        &["ranks", "scale", "MTEPS", "hit_rate%", "dev_reads", "time_ms"],
        &["ranks", "scale", "mteps", "hit_rate", "device_reads", "time_ms"],
    );

    for &p in &worlds {
        let scale = per_rank_log2 + (p as f64).log2() as u32;
        let gen = RmatGenerator::graph500(scale);
        let per_rank_bytes = (gen.num_edges() as usize * 2 * 8) / p;
        let cache_pages = (per_rank_bytes / 4096 / cache_fraction).max(8);
        let cfg = GraphConfig::external(
            DeviceProfile::fusion_io(),
            PageCacheConfig {
                page_size: 4096,
                capacity_pages: cache_pages,
                shards: 8,
                readahead_pages: 8,
                ..PageCacheConfig::default()
            },
        );

        let out = CommWorld::run(p, |ctx| {
            let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
            let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, cfg);
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            let cache = g.csr().cache_stats().expect("external storage");
            let dev = g.csr().cache().unwrap().device().stats();
            (r, cache, dev)
        });
        let (r, cache, dev) = &out[0];
        let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
        exp.row2(
            &csv_row![
                p,
                scale,
                havoq_bench::mteps(r.traversed_edges, elapsed),
                format!("{:.2}", 100.0 * cache.hit_rate()),
                dev.reads,
                ms(elapsed)
            ],
            &csv_row![
                p,
                scale,
                r.traversed_edges as f64 / elapsed.as_secs_f64() / 1e6,
                cache.hit_rate(),
                dev.reads,
                elapsed.as_secs_f64() * 1e3
            ],
        );
    }
    exp.finish(&[
        "Paper shape: weak scaling continues into external memory; the page",
        "cache (fed by the vertex-ordered visitor queue) absorbs most accesses,",
        "so adding ranks+data keeps per-rank throughput roughly flat.",
    ]);
}
