//! Figure 6: weak scaling of k-core decomposition on RMAT graphs (paper:
//! BG/P up to 4096 cores, 2^18 vertices and 2^22 undirected edges per
//! core; time to compute cores 4, 16 and 64).
//!
//! Simulation translation as in Figure 5: per-rank visitor counts are the
//! machine-independent weak-scaling signal; wall-clock on one core grows
//! with total work.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;

fn main() {
    let per_rank_log2: u32 = pick(9, 11);
    let worlds: Vec<usize> = pick(vec![1, 4], vec![1, 2, 4, 8, 16]);
    let ks = [4u64, 16, 64];

    let mut exp = Experiment::begin(
        &[
            &format!("Figure 6 — weak scaling of k-core on RMAT (2^{per_rank_log2} vertices/rank,"),
            "cores k = 4, 16, 64)",
        ],
        "fig06_kcore_weak.csv",
        &["ranks", "scale", "k", "core size", "time_ms", "visitors/rank"],
        &["ranks", "scale", "k", "core_size", "time_ms", "visitors_per_rank"],
    );

    for &p in &worlds {
        let scale = per_rank_log2 + (p as f64).log2() as u32;
        let gen = RmatGenerator::graph500(scale);
        for &k in &ks {
            let out = CommWorld::run(p, |ctx| {
                let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                local.extend(
                    local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()),
                );
                let g = DistGraph::build(
                    ctx,
                    local,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                let r = kcore(ctx, &g, k, &KCoreConfig::default());
                let visitors = ctx.all_reduce_sum(r.stats.visitors_executed);
                (r.alive_count, r.elapsed, visitors)
            });
            let (alive, _, visitors) = out[0];
            let elapsed = out.iter().map(|o| o.1).max().unwrap();
            exp.row2(
                &csv_row![p, scale, k, alive, ms(elapsed), visitors / p as u64],
                &csv_row![p, scale, k, alive, elapsed.as_secs_f64() * 1e3, visitors / p as u64],
            );
        }
    }
    exp.finish(&[
        "Paper shape: near-linear weak scaling for all three cores; smaller k",
        "peels less of the graph, so its traversal is cheaper. Our per-rank",
        "visitor counts stay ~flat as ranks and workload grow together.",
    ]);
}
