//! Figure 7: weak scaling of triangle counting on Small World graphs
//! (paper: BG/P up to 4096 cores, 2^18 vertices and 2^22 undirected edges
//! per core, uniform degree 32, rewire probabilities 0/10/20/30 %).
//!
//! Small-world inputs isolate the framework's scaling from hub growth —
//! exactly why the paper picked them for this figure. The reproduction
//! uses degree 16 to keep the cubic-ish visitor volume tractable at
//! simulation scale; rewire sweeps match the paper.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::smallworld::SmallWorldGenerator;

fn main() {
    let per_rank_log2: u32 = pick(8, 10);
    let worlds: Vec<usize> = pick(vec![1, 4], vec![1, 2, 4, 8, 16]);
    let degree = 16u64;
    let rewires = [0.0, 0.1, 0.2, 0.3];

    let mut exp = Experiment::begin(
        &[
            "Figure 7 — weak scaling of triangle counting on Small World graphs",
            &format!("(2^{per_rank_log2} vertices/rank, uniform degree {degree}, rewire 0-30 %)"),
        ],
        "fig07_tri_weak.csv",
        &["ranks", "rewire%", "triangles", "time_ms", "visitors/rank"],
        &["ranks", "rewire", "triangles", "time_ms", "visitors_per_rank"],
    );

    for &p in &worlds {
        let n = 1u64 << (per_rank_log2 + (p as f64).log2() as u32);
        for &rw in &rewires {
            let gen = SmallWorldGenerator::new(n, degree).with_rewire(rw);
            let out = CommWorld::run(p, |ctx| {
                let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                local.extend(
                    local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()),
                );
                let g = DistGraph::build(
                    ctx,
                    local,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                let r = triangle_count(ctx, &g, &TriangleConfig::default());
                let visitors = ctx.all_reduce_sum(r.stats.visitors_executed);
                (r.triangles, r.elapsed, visitors)
            });
            let (tri, _, visitors) = out[0];
            let elapsed = out.iter().map(|o| o.1).max().unwrap();
            exp.row2(
                &csv_row![p, format!("{:.0}", rw * 100.0), tri, ms(elapsed), visitors / p as u64],
                &csv_row![p, rw, tri, elapsed.as_secs_f64() * 1e3, visitors / p as u64],
            );
        }
    }
    exp.finish(&[
        "Paper shape: flat weak scaling for every rewire setting; higher rewire",
        "destroys ring triangles (fewer closures) while visitor volume stays",
        "bounded by the uniform degree.",
    ]);
}
