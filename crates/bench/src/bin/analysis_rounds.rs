//! Section VI-D: empirical check of the parallel-rounds bounds using the
//! idealized round-synchronous executor.
//!
//! For BFS the paper derives Θ(D + |E|/p + d_in_max) rounds without ghosts
//! and Θ(D + |E|/p + p) with them. This binary sweeps processor counts and
//! graph families and prints measured rounds next to the evaluated bounds.

use havoq_bench::{csv_row, pick, Experiment};
use havoq_core::rounds::{
    bfs_bound_ghosts, bfs_bound_no_ghosts, bfs_rounds, kcore_bound, kcore_rounds, triangle_bound,
    triangle_rounds,
};
use havoq_graph::analysis::DegreeCensus;
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::gen::smallworld::SmallWorldGenerator;
use havoq_graph::types::Edge;

fn run_family(name: &str, n: u64, edges: &[Edge], exp: &mut Experiment) {
    let d_in = DegreeCensus::undirected_from_edges(n, edges.iter().copied()).max_degree();
    for p in [1usize, 8, 64, 512] {
        let no_g = bfs_rounds(n, edges, p, 0, false);
        let with_g = bfs_rounds(n, edges, p, 0, true);
        // measured depth from the model is <= rounds; reuse rounds at huge p
        // as a diameter proxy
        let depth_proxy = bfs_rounds(n, edges, 1 << 20, 0, true).rounds;
        let bound_no = bfs_bound_no_ghosts(depth_proxy, edges.len() as u64, p, d_in);
        let bound_g = bfs_bound_ghosts(depth_proxy, edges.len() as u64, p);
        exp.row(&csv_row![
            name,
            p,
            no_g.rounds,
            bound_no,
            with_g.rounds,
            bound_g,
            with_g.ghost_filtered
        ]);
    }
}

fn main() {
    let scale: u32 = pick(8, 10);

    let mut exp = Experiment::begin(
        &["Section VI-D — parallel-rounds model vs analytic bounds (BFS)"],
        "analysis_rounds.csv",
        &["family", "p", "rounds", "bound", "rounds_ghost", "bound_ghost", "filtered"],
        &[
            "family",
            "p",
            "rounds_no_ghosts",
            "bound_no_ghosts",
            "rounds_ghosts",
            "bound_ghosts",
            "ghost_filtered",
        ],
    );

    let rmat = RmatGenerator::graph500(scale);
    run_family("rmat", rmat.num_vertices(), &rmat.symmetric_edges(42), &mut exp);

    let sw = SmallWorldGenerator::new(1 << scale, 8).with_rewire(0.01);
    run_family("smallworld", 1 << scale, &sw.symmetric_edges(42), &mut exp);

    // star: the hub pathology the d_in term describes
    let n_star = 1u64 << scale.min(9);
    let star: Vec<Edge> = (1..n_star).flat_map(|v| [Edge::new(v, 0), Edge::new(0, v)]).collect();
    run_family("star", n_star, &star, &mut exp);

    exp.finish(&[
        "Paper shape: measured rounds stay within a small constant of the",
        "bounds; on the star graph ghosts collapse the d_in term to ~p.",
    ]);

    // k-core and triangle-count models (Sections VI-D2/VI-D3): both keep
    // the d_in term because ghosts are disallowed
    let mut exp2 = Experiment::begin(
        &["k-core (k = 4) and triangle rounds vs their bounds:"],
        "analysis_rounds_kcore_tri.csv",
        &["family", "p", "kcore_rounds", "kcore_bound", "tri_rounds", "tri_bound"],
        &["family", "p", "kcore_rounds", "kcore_bound", "tri_rounds", "tri_bound"],
    );
    let tri_scale = scale.min(9); // triangle visitor volume is cubic-ish
    let rmat_small = RmatGenerator::graph500(tri_scale);
    let small_edges = rmat_small.symmetric_edges(42);
    let sw_small = SmallWorldGenerator::new(1 << tri_scale, 8).with_rewire(0.01);
    let sw_edges = sw_small.symmetric_edges(42);
    for (name, n, edges) in [
        ("rmat", rmat_small.num_vertices(), &small_edges),
        ("smallworld", 1 << tri_scale, &sw_edges),
    ] {
        let census = DegreeCensus::undirected_from_edges(n, edges.iter().copied());
        let d_max = census.max_degree();
        let depth_proxy = bfs_rounds(n, edges, 1 << 20, 0, true).rounds;
        for p in [8usize, 64, 512] {
            let kc = kcore_rounds(n, edges, p, 4);
            let kb = kcore_bound(depth_proxy, edges.len() as u64, p, d_max);
            let tr = triangle_rounds(n, edges, p);
            let tb = triangle_bound(edges.len() as u64, d_max, p, d_max);
            exp2.row(&csv_row![name, p, kc.rounds, kb, tr.rounds, tb]);
        }
    }
    exp2.finish(&[
        "Both kernels keep the d_in floor (no ghosts allowed); triangle",
        "rounds track |E| * d_out / p, largest on the hub-heavy RMAT family.",
    ]);
}
