//! Ablation of the page cache's eviction policy. The paper's user-space
//! cache (Section II-B) needs recency awareness at O(1) cost under highly
//! concurrent access — the CLOCK design. This binary compares CLOCK against
//! true LRU (better recency, O(n) victim scans) and FIFO (no recency) on
//! the external-memory BFS access pattern, reporting hit rates, device
//! reads, and wall time.

use havoq_bench::{csv_row, ms, print_header, print_row, Csv};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_nvram::cache::{EvictionPolicy, PageCacheConfig};
use havoq_nvram::device::DeviceProfile;

fn main() {
    let quick = havoq_bench::quick();
    let scale: u32 = if quick { 11 } else { 14 };
    let ranks: usize = if quick { 2 } else { 4 };
    let gen = RmatGenerator::graph500(scale);
    let cache_pages = ((gen.num_edges() as usize * 2 * 8) / ranks / 4096 / 8).max(8);

    println!("Eviction-policy ablation — external-memory BFS (RMAT scale {scale},");
    println!("{ranks} ranks, cache = data/8)\n");
    print_header(&["policy", "hit_rate%", "dev_reads", "time_ms"]);
    let mut csv = Csv::create(
        "ablation_eviction.csv",
        &["policy", "hit_rate", "device_reads", "time_ms"],
    );

    for (name, policy) in [
        ("clock", EvictionPolicy::Clock),
        ("lru", EvictionPolicy::Lru),
        ("fifo", EvictionPolicy::Fifo),
    ] {
        let cfg = GraphConfig::external(
            DeviceProfile::fusion_io(),
            PageCacheConfig {
                page_size: 4096,
                capacity_pages: cache_pages,
                shards: 8,
                policy,
                ..PageCacheConfig::default()
            },
        );
        let out = CommWorld::run(ranks, |ctx| {
            let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
            let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, cfg);
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            let cache = g.csr().cache_stats().unwrap();
            let dev = g.csr().cache().unwrap().device().stats();
            (r.elapsed, cache, dev)
        });
        let (_, cache, dev) = &out[0];
        let elapsed = out.iter().map(|o| o.0).max().unwrap();
        print_row(&csv_row![
            name,
            format!("{:.2}", 100.0 * cache.hit_rate()),
            dev.reads,
            ms(elapsed)
        ]);
        csv.row(&csv_row![name, cache.hit_rate(), dev.reads, elapsed.as_secs_f64() * 1e3]);
    }
    csv.finish();
    println!("\nDesign-choice check: CLOCK should track LRU's hit rate closely at a");
    println!("fraction of the bookkeeping; FIFO pays for ignoring recency.");
}
