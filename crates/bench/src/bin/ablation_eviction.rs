//! Ablation of the page cache's eviction policy. The paper's user-space
//! cache (Section II-B) needs recency awareness at O(1) cost under highly
//! concurrent access — the CLOCK design. This binary compares CLOCK against
//! true LRU (better recency, O(n) victim scans) and FIFO (no recency) on
//! the external-memory BFS access pattern, reporting hit rates, device
//! reads, and wall time.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;
use havoq_nvram::cache::{EvictionPolicy, PageCacheConfig};
use havoq_nvram::device::DeviceProfile;

fn main() {
    let scale: u32 = pick(11, 14);
    let ranks: usize = pick(2, 4);
    let gen = RmatGenerator::graph500(scale);
    let cache_pages = ((gen.num_edges() as usize * 2 * 8) / ranks / 4096 / 8).max(8);

    let mut exp = Experiment::begin(
        &[
            &format!("Eviction-policy ablation — external-memory BFS (RMAT scale {scale},"),
            &format!("{ranks} ranks, cache = data/8)"),
        ],
        "ablation_eviction.csv",
        &["policy", "hit_rate%", "dev_reads", "time_ms"],
        &["policy", "hit_rate", "device_reads", "time_ms"],
    );

    for (name, policy) in [
        ("clock", EvictionPolicy::Clock),
        ("lru", EvictionPolicy::Lru),
        ("fifo", EvictionPolicy::Fifo),
    ] {
        let cfg = GraphConfig::external(
            DeviceProfile::fusion_io(),
            PageCacheConfig {
                page_size: 4096,
                capacity_pages: cache_pages,
                shards: 8,
                policy,
                ..PageCacheConfig::default()
            },
        );
        let out = CommWorld::run(ranks, |ctx| {
            let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            local.extend(local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()));
            let g = DistGraph::build(ctx, local, PartitionStrategy::EdgeList, cfg);
            let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
            let cache = g.csr().cache_stats().unwrap();
            let dev = g.csr().cache().unwrap().device().stats();
            (r.elapsed, cache, dev)
        });
        let (_, cache, dev) = &out[0];
        let elapsed = out.iter().map(|o| o.0).max().unwrap();
        exp.row2(
            &csv_row![name, format!("{:.2}", 100.0 * cache.hit_rate()), dev.reads, ms(elapsed)],
            &csv_row![name, cache.hit_rate(), dev.reads, elapsed.as_secs_f64() * 1e3],
        );
    }
    exp.finish(&[
        "Design-choice check: CLOCK should track LRU's hit rate closely at a",
        "fraction of the bookkeeping; FIFO pays for ignoring recency.",
    ]);
}
