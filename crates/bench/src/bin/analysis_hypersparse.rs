//! Section VIII-A: why the paper rejects 2D partitioning at scale and for
//! semi-external memory.
//!
//! Three quantitative claims, checked on real RMAT edge lists:
//!
//! 1. **Hypersparsity** — 2D blocks become hypersparse (fewer edges than
//!    in-memory state entries) once `sqrt(p) > average degree`; for
//!    Graph500's degree 16 that is only p = 256. Edge-list partitions
//!    cannot go hypersparse unless the whole graph is.
//! 2. **State growth** — per-partition algorithm state scales
//!    `O(V / sqrt(p))` under 2D (a row block + a column block) vs
//!    `O(V / p)` under edge-list partitioning: 2D hits a memory wall under
//!    weak scaling.
//! 3. **Semi-external fit** — semi-external memory wants in-memory state
//!    (vertices) much smaller than external bulk (edges); the
//!    state-to-edge ratio per partition quantifies the fit.

use havoq_bench::{csv_row, pick, Experiment};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::partition::{grid_dims, partition_histogram, two_d_partition};

fn main() {
    let scale: u32 = pick(14, 18);
    let parts: Vec<usize> = pick(vec![16, 64, 256], vec![16, 64, 256, 1024, 4096]);

    let gen = RmatGenerator::graph500(scale);
    let n = gen.num_vertices();
    let m = gen.num_edges();

    let mut exp = Experiment::begin(
        &[
            "Section VIII-A — hypersparsity and state growth: 2D vs edge-list",
            &format!("(RMAT scale {scale}: {n} vertices, {m} directed edges, avg degree 16)"),
        ],
        "analysis_hypersparse.csv",
        &[
            "p",
            "2D_state/part",
            "EL_state/part",
            "2D_hypersparse",
            "EL_hypersparse",
            "2D_state/edges",
        ],
        &[
            "p",
            "state_2d_per_part",
            "state_el_per_part",
            "hypersparse_2d",
            "hypersparse_el",
            "state_to_edge_ratio_2d",
        ],
    );

    for &p in &parts {
        let (rows, cols) = grid_dims(p);
        // per-partition in-memory state: a row block + a column block (2D)
        // vs the contiguous vertex range plus <= 2 replicas (edge-list)
        let state_2d = n / rows as u64 + n / cols as u64;
        let state_el = n / p as u64 + 2;

        let h2 =
            partition_histogram(gen.edges_range(7, 0..m), p, |e| two_d_partition(e, n, rows, cols));
        let hyp_2d = h2.iter().filter(|&&edges| edges < state_2d).count();
        // edge-list: every partition holds exactly m/p edges
        let el_edges_per_part = m / p as u64;
        let hyp_el = if el_edges_per_part < state_el { p } else { 0 };

        let ratio = state_2d as f64 / (m as f64 / p as f64);
        exp.row2(
            &csv_row![
                p,
                state_2d,
                state_el,
                format!("{hyp_2d}/{p}"),
                format!("{hyp_el}/{p}"),
                format!("{ratio:.3}")
            ],
            &csv_row![p, state_2d, state_el, hyp_2d, hyp_el, ratio],
        );
    }
    exp.finish(&[
        "Paper shape: by p = 256 the 2D state-per-partition rivals its edge",
        "count (ratio -> 1): partitions are hypersparse and semi-external",
        "storage stops paying. Edge-list state shrinks as O(V/p) instead.",
    ]);
}
