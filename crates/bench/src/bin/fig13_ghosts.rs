//! Figure 13: percent improvement from ghost vertices vs. no ghosts.
//! Paper: 4096 BG/P cores, 2^30-vertex RMAT; 1 ghost already buys >12 %,
//! 512 ghosts ~19.5 %; all other BFS experiments use 256 ghosts per
//! partition.
//!
//! The simulation sweeps ghosts/partition and reports both the wall-clock
//! improvement and the machine-independent savings: payload messages
//! filtered before ever reaching the network, and the receive-hotspot
//! imbalance across ranks.
//!
//! Wall-clock honesty: shared-memory channels make a message as cheap as
//! the ghost-table lookup that would filter it, which hides the effect the
//! paper measures (BG/P's per-message receive overhead serializing at hub
//! masters). The sweep therefore runs under the mailbox's network cost
//! model (500 ns per delivered payload — conservative versus BG/P MPI's
//! multi-microsecond receive path).

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;

fn main() {
    let ranks: usize = pick(4, 8);
    let scale: u32 = pick(11, 14);
    let ghost_counts: &[usize] =
        pick(&[0, 16][..], &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512][..]);

    let mut exp = Experiment::begin(
        &[&format!("Figure 13 — ghost-vertex sweep (RMAT scale {scale}, {ranks} ranks)")],
        "fig13_ghosts.csv",
        &["ghosts", "time_ms", "improve%", "payload_sent", "filtered", "recv_imb"],
        &[
            "ghosts",
            "time_ms",
            "improvement_pct",
            "payload_sent",
            "ghost_filtered",
            "receive_imbalance",
        ],
    );

    let gen = RmatGenerator::graph500(scale);
    let mut base_ms = 0.0f64;
    for &k in ghost_counts {
        // best-of-3 to damp single-core scheduling noise
        let mut best: Option<(std::time::Duration, u64, u64, f64)> = None;
        for _ in 0..3 {
            let out = CommWorld::run(ranks, |ctx| {
                let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                local.extend(
                    local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()),
                );
                let g = DistGraph::build(
                    ctx,
                    local,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                let mut cfg = BfsConfig::default().with_ghosts(k);
                cfg.traversal.mailbox.recv_cost_ns = 500;
                let r = bfs(ctx, &g, VertexId(0), &cfg);
                let sent = ctx.all_reduce_sum(r.stats.payload_sent);
                let filtered = ctx.all_reduce_sum(r.stats.ghost_filtered);
                let max_recv = ctx.all_reduce_max(r.stats.payload_received);
                let sum_recv = ctx.all_reduce_sum(r.stats.payload_received);
                (r.elapsed, sent, filtered, max_recv as f64 / (sum_recv as f64 / ctx.size() as f64))
            });
            let elapsed = out.iter().map(|o| o.0).max().unwrap();
            let cand = (elapsed, out[0].1, out[0].2, out[0].3);
            if best.map(|b| cand.0 < b.0).unwrap_or(true) {
                best = Some(cand);
            }
        }
        let (elapsed, sent, filtered, recv_imb) = best.unwrap();
        let t = elapsed.as_secs_f64() * 1e3;
        if k == 0 {
            base_ms = t;
        }
        let improve = 100.0 * (base_ms - t) / base_ms;
        exp.row2(
            &csv_row![
                k,
                ms(elapsed),
                format!("{improve:.1}"),
                sent,
                filtered,
                format!("{recv_imb:.3}")
            ],
            &csv_row![k, t, improve, sent, filtered, recv_imb],
        );
    }
    exp.finish(&[
        "Paper shape: a single ghost per partition already improves BFS by",
        ">12%, rising to ~19.5% at 512 ghosts. The filtered column shows the",
        "hub visitors that never hit the network; recv imbalance drops with k.",
    ]);
}
