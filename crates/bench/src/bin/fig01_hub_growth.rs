//! Figure 1: hub growth for Graph500 RMAT graphs.
//!
//! Paper series: total edges belonging to the max-degree vertex, and to
//! vertices with degree >= 1,000 and >= 10,000, as scale grows (mean degree
//! fixed at 16). Paper scales reach 2^30; we sweep the simulation scales
//! and expect the same monotone growth with the max-degree hub crossing
//! 10^4-10^5 edges by the low-20s scales.

use havoq_bench::{csv_row, pick, Experiment};
use havoq_graph::analysis::DegreeCensus;
use havoq_graph::gen::rmat::RmatGenerator;

fn main() {
    let scales: Vec<u32> =
        pick(vec![12, 14, 16], (12..=(20 + havoq_bench::scale_bump())).step_by(2).collect());
    let mut exp = Experiment::begin(
        &[
            "Figure 1 — hub growth for Graph500 RMAT graphs (degree census of the",
            "directed edge list; average degree 16 at every scale)",
        ],
        "fig01_hub_growth.csv",
        &[
            "scale",
            "vertices",
            "max_degree",
            "edges_deg>=256",
            "edges_deg>=1000",
            "edges_deg>=10000",
        ],
        &[
            "scale",
            "vertices",
            "max_degree",
            "edges_deg_ge_256",
            "edges_deg_ge_1000",
            "edges_deg_ge_10000",
        ],
    );
    for &scale in &scales {
        let gen = RmatGenerator::graph500(scale);
        // streaming census: no edge list materialized
        let census =
            DegreeCensus::from_edges(gen.num_vertices(), gen.edges_range(42, 0..gen.num_edges()));
        let stats = census.hub_stats(&[256, 1_000, 10_000]);
        exp.row(&csv_row![
            scale,
            gen.num_vertices(),
            stats.max_degree,
            stats.edges_on_hubs[0].1,
            stats.edges_on_hubs[1].1,
            stats.edges_on_hubs[2].1
        ]);
    }
    exp.finish(&[
        "Paper shape: all series grow monotonically with scale; by 2^30 the",
        "max-degree hub alone exceeds 10M edges. The simulation shows the same",
        "power-law growth at its smaller scales.",
    ]);
}
