//! Figure 2: weak scaling of Graph500 partition imbalance for 1D and 2D
//! block partitioning (plus the paper's edge-list partitioning, which is
//! even by construction).
//!
//! Paper setup: 2^18 vertices per partition, imbalance = max/mean edges per
//! partition. We weak-scale with 2^14 vertices per partition to keep the
//! single-core run short; the ordering (1D >> 2D >> edge-list ~ 1.0) and
//! the growth of 1D imbalance with partition count are the claims to
//! reproduce.

use havoq_bench::{csv_row, pick, Experiment};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::partition::{
    grid_dims, imbalance, one_d_partition, partition_histogram, two_d_partition,
};

fn main() {
    // The paper uses 2^18 vertices/partition at scales where the max hub
    // rivals the per-partition edge mean. At simulation scales the same
    // hub/mean ratio needs fewer vertices per partition: 2^12.
    let per_partition_log2: u32 = 12 - pick(2, 0);
    let parts: Vec<usize> = pick(vec![4, 16, 64], vec![2, 4, 8, 16, 32, 64, 128, 256, 512]);

    let mut exp = Experiment::begin(
        &[
            &format!(
                "Figure 2 — weak scaling of partition imbalance (RMAT, 2^{per_partition_log2}"
            ),
            "vertices per partition; imbalance = max edges / mean edges)",
        ],
        "fig02_imbalance.csv",
        &["partitions", "scale", "1D", "2D", "edge-list"],
        &["partitions", "scale", "imbalance_1d", "imbalance_2d", "imbalance_edge_list"],
    );

    for &p in &parts {
        let scale = per_partition_log2 + (p as f64).log2() as u32;
        let gen = RmatGenerator::graph500(scale);
        let n = gen.num_vertices();
        let m = gen.num_edges();

        let h1 = partition_histogram(gen.edges_range(7, 0..m), p, |e| one_d_partition(e, n, p));
        let (rows, cols) = grid_dims(p);
        let h2 =
            partition_histogram(gen.edges_range(7, 0..m), p, |e| two_d_partition(e, n, rows, cols));
        let hel: Vec<u64> =
            (0..p as u64).map(|r| m * (r + 1) / p as u64 - m * r / p as u64).collect();

        let (i1, i2, iel) = (imbalance(&h1), imbalance(&h2), imbalance(&hel));
        exp.row2(
            &csv_row![p, scale, format!("{i1:.3}"), format!("{i2:.3}"), format!("{iel:.4}")],
            &csv_row![p, scale, i1, i2, iel],
        );
    }
    exp.finish(&[
        "Paper shape: 1D imbalance grows with partition count (a hub's whole",
        "adjacency list lands on one partition); 2D stays much flatter; the",
        "edge-list partitioning used by this work is exactly even.",
    ]);
}
