//! Figure 12: edge-list partitioning vs. traditional 1D partitioning for
//! BFS on RMAT graphs (paper: BG/P weak scaling, graph sizes reduced so 1D
//! doesn't run out of memory).
//!
//! The simulation reports, per world size: BFS time under both
//! partitionings, the storage imbalance (max/mean edges per rank — the
//! quantity Figure 2 plots and Figure 12 suffers from), and the received-
//! visitor imbalance that turns storage skew into compute skew.

use havoq_bench::{csv_row, ms, pick, Experiment};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;

fn main() {
    let per_rank_log2: u32 = pick(9, 11);
    let worlds: Vec<usize> = pick(vec![4], vec![2, 4, 8, 16, 32]);

    let mut exp = Experiment::begin(
        &[&format!(
            "Figure 12 — edge-list partitioning vs 1D (RMAT, 2^{per_rank_log2} vertices/rank)"
        )],
        "fig12_elp_vs_1d.csv",
        &["ranks", "strategy", "time_ms", "storage_imb", "recv_imb", "MTEPS"],
        &["ranks", "strategy", "time_ms", "storage_imbalance", "receive_imbalance", "mteps"],
    );

    for &p in &worlds {
        let scale = per_rank_log2 + (p as f64).log2() as u32;
        let gen = RmatGenerator::graph500(scale);
        for (strategy, name) in
            [(PartitionStrategy::EdgeList, "edge-list"), (PartitionStrategy::OneD, "1D")]
        {
            let out = CommWorld::run(p, |ctx| {
                let mut local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                local.extend(
                    local.clone().iter().filter(|e| !e.is_self_loop()).map(|e| e.reversed()),
                );
                // keep duplicate edges, as the Graph500 CSR does: the even
                // split of edge-list partitioning is then exact, and 1D
                // carries the full hub mass
                let cfg = GraphConfig { dedup: false, ..GraphConfig::default() };
                let g = DistGraph::build(ctx, local, strategy, cfg);
                let r = bfs(ctx, &g, VertexId(0), &BfsConfig::default());
                let local_edges = g.csr().num_edges();
                let max_edges = ctx.all_reduce_max(local_edges);
                let sum_edges = ctx.all_reduce_sum(local_edges);
                let recv = r.stats.payload_received;
                let max_recv = ctx.all_reduce_max(recv);
                let sum_recv = ctx.all_reduce_sum(recv);
                (
                    r,
                    max_edges as f64 / (sum_edges as f64 / p as f64),
                    max_recv as f64 / (sum_recv as f64 / p as f64).max(1.0),
                )
            });
            let (r, storage_imb, recv_imb) = &out[0];
            let elapsed = out.iter().map(|o| o.0.elapsed).max().unwrap();
            exp.row2(
                &csv_row![
                    p,
                    name,
                    ms(elapsed),
                    format!("{storage_imb:.3}"),
                    format!("{recv_imb:.3}"),
                    havoq_bench::mteps(r.traversed_edges, elapsed)
                ],
                &csv_row![
                    p,
                    name,
                    elapsed.as_secs_f64() * 1e3,
                    storage_imb,
                    recv_imb,
                    r.traversed_edges as f64 / elapsed.as_secs_f64() / 1e6
                ],
            );
        }
    }
    exp.finish(&[
        "Paper shape: edge-list weak scaling is near linear while 1D slows",
        "down from hub-induced imbalance; the storage-imbalance column should",
        "be ~1.0 for edge-list and grow with ranks for 1D.",
    ]);
}
