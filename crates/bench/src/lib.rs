//! Shared harness for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary under `src/bin/` reproduces one evaluation artifact (see
//! DESIGN.md's per-experiment index), prints the paper's rows/series to
//! stdout, and writes a CSV under `results/`. Set `HAVOQ_QUICK=1` to run
//! reduced parameter sweeps (used by integration tests); set
//! `HAVOQ_SCALE_BUMP=n` to grow workloads on bigger machines.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// True when reduced sweeps are requested.
pub fn quick() -> bool {
    std::env::var("HAVOQ_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// Pick the reduced-sweep parameter under `HAVOQ_QUICK`, the full one
/// otherwise. Every experiment binary sizes its workload this way.
pub fn pick<T>(quick_val: T, full_val: T) -> T {
    if quick() {
        quick_val
    } else {
        full_val
    }
}

/// Additional scale applied to workloads (log2 steps).
pub fn scale_bump() -> u32 {
    std::env::var("HAVOQ_SCALE_BUMP").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Checkpoint cadence for the traversal binaries: `--checkpoint-every N`
/// on the command line (or `HAVOQ_CHECKPOINT_EVERY=N` in the environment)
/// checkpoints every `N` executed visitors per rank so the run reports the
/// overhead of cutting and persisting traversal state. `None` (the
/// default) runs uncheckpointed.
pub fn checkpoint_every() -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--checkpoint-every" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--checkpoint-every=") {
            return v.parse().ok();
        }
    }
    std::env::var("HAVOQ_CHECKPOINT_EVERY").ok().and_then(|v| v.parse().ok())
}

/// Wire-fault plan for the traversal binaries: `--faults SEED` on the
/// command line (or `HAVOQ_FAULTS=SEED` in the environment) runs every
/// traversal under the lossy chaos plan derived from `SEED` — delay,
/// reorder, duplicate, stall and slow-rank plus seeded frame corruption
/// and loss — so the CRC + NACK/retransmit machinery runs hot and its
/// recovery counters show up in the report. Seeds parse as decimal or
/// `0x`-prefixed hex. `None` (the default) runs fault-free.
pub fn faults() -> Option<u64> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--faults" {
            return args.next().as_deref().and_then(parse_seed);
        }
        if let Some(v) = a.strip_prefix("--faults=") {
            return parse_seed(v);
        }
    }
    std::env::var("HAVOQ_FAULTS").ok().as_deref().and_then(parse_seed)
}

/// Intra-rank worker threads for the traversal binaries: `--threads N` on
/// the command line (or `HAVOQ_THREADS=N` in the environment) runs every
/// visitor queue with an `N`-thread worker pool per rank (DESIGN.md §11).
/// `None` (the default) leaves the queue on its serial single-thread path.
pub fn threads() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--threads" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().ok();
        }
    }
    std::env::var("HAVOQ_THREADS").ok().and_then(|v| v.parse().ok())
}

/// Admission backlog bound for the serving binaries: `--backlog N` on the
/// command line (or `HAVOQ_BACKLOG=N` in the environment) caps the
/// admission queue at `N` pending queries; beyond it the shed policy
/// drops work instead of letting latency ramp without bound (DESIGN.md
/// §15). `None` (the default) leaves the backlog unbounded.
pub fn backlog() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--backlog" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--backlog=") {
            return v.parse().ok();
        }
    }
    std::env::var("HAVOQ_BACKLOG").ok().and_then(|v| v.parse().ok())
}

/// Shed policy at the backlog bound: `--shed-policy reject-new` (default)
/// or `--shed-policy drop-oldest` (or `HAVOQ_SHED_POLICY` in the
/// environment). Only meaningful together with [`backlog`].
pub fn shed_policy() -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--shed-policy" {
            return args.next();
        }
        if let Some(v) = a.strip_prefix("--shed-policy=") {
            return Some(v.to_string());
        }
    }
    std::env::var("HAVOQ_SHED_POLICY").ok()
}

/// Batched query width for the traversal binaries: `--batch K` on the
/// command line (or `HAVOQ_BATCH=K` in the environment) runs search keys
/// through the multi-source batching layer, `K` queries per shared
/// traversal (DESIGN.md §12). `None` (the default) runs keys sequentially.
pub fn batch() -> Option<usize> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--batch" {
            return args.next().and_then(|v| v.parse().ok());
        }
        if let Some(v) = a.strip_prefix("--batch=") {
            return v.parse().ok();
        }
    }
    std::env::var("HAVOQ_BATCH").ok().and_then(|v| v.parse().ok())
}

/// BFS engine direction policy for the traversal binaries: `--direction
/// {top,bottom,auto,async}` on the command line (or `HAVOQ_DIRECTION` in
/// the environment) selects the direction-optimizing level-synchronous
/// engine (DESIGN.md §13) instead of the asynchronous visitor loop.
/// `None` (the default) keeps the asynchronous engine; an unknown token
/// panics loudly rather than silently falling back.
pub fn direction() -> Option<havoq_core::direction::DirectionMode> {
    let parse = |v: &str| {
        havoq_core::direction::DirectionMode::parse(v)
            .unwrap_or_else(|| panic!("unknown --direction {v:?} (want top|bottom|auto|async)"))
    };
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--direction" {
            return args.next().as_deref().map(parse);
        }
        if let Some(v) = a.strip_prefix("--direction=") {
            return Some(parse(v));
        }
    }
    std::env::var("HAVOQ_DIRECTION").ok().as_deref().map(parse)
}

/// CSR storage backend for the traversal binaries (DESIGN.md §14).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageMode {
    /// Targets in DRAM.
    Mem,
    /// Raw `u64` targets behind the NVRAM page cache.
    Ext,
    /// Varint gap-compressed target bytes behind the page cache.
    ExtCompressed,
}

impl StorageMode {
    pub fn parse(v: &str) -> Option<Self> {
        match v {
            "mem" => Some(Self::Mem),
            "ext" => Some(Self::Ext),
            "ext-compressed" | "ext-comp" => Some(Self::ExtCompressed),
            _ => None,
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            Self::Mem => "mem",
            Self::Ext => "ext",
            Self::ExtCompressed => "ext-comp",
        }
    }

    /// Build the matching [`havoq_graph::GraphConfig`] — `profile`/`cache`
    /// apply to the external variants so mem and ext rows share one call
    /// site at equal cache budget.
    pub fn graph_config(
        &self,
        profile: havoq_nvram::DeviceProfile,
        cache: havoq_nvram::PageCacheConfig,
    ) -> havoq_graph::GraphConfig {
        match self {
            Self::Mem => havoq_graph::GraphConfig::default(),
            Self::Ext => havoq_graph::GraphConfig::external(profile, cache),
            Self::ExtCompressed => havoq_graph::GraphConfig::external_compressed(profile, cache),
        }
    }
}

/// CSR storage backend: `--storage {mem,ext,ext-compressed}` on the command
/// line (or `HAVOQ_STORAGE` in the environment). `None` (the default) lets
/// each binary keep its built-in storage matrix; an unknown token panics
/// loudly rather than silently falling back.
pub fn storage() -> Option<StorageMode> {
    let parse = |v: &str| {
        StorageMode::parse(v)
            .unwrap_or_else(|| panic!("unknown --storage {v:?} (want mem|ext|ext-compressed)"))
    };
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--storage" {
            return args.next().as_deref().map(parse);
        }
        if let Some(v) = a.strip_prefix("--storage=") {
            return Some(parse(v));
        }
    }
    std::env::var("HAVOQ_STORAGE").ok().as_deref().map(parse)
}

/// The Graph500 search-key seed the benchmark binaries share.
pub const SEARCH_KEY_SEED: u64 = 0x9E3779B97F4A7C15;

/// Select `num_keys` *distinct* search keys with nonzero degree (the
/// Graph500 rule), deterministically and collectively: every rank runs the
/// same xorshift probe sequence and the same degree-probe collectives, so
/// all ranks agree on the key set.
///
/// Panics (loudly, with counts) when the graph does not contain enough
/// usable keys — see [`select_search_keys_checked`]. The old in-bin
/// selection loop silently *under-filled* when its `4 × num_keys` random
/// probes ran out on a small or sparse graph, quietly shrinking the
/// benchmark; now the probe phase falls back to a deterministic rescan of
/// the whole vertex range, and failure is only declared when the graph
/// genuinely has fewer usable vertices than requested.
pub fn select_search_keys(
    ctx: &havoq_comm::RankCtx,
    g: &havoq_graph::dist::DistGraph,
    num_keys: usize,
    seed: u64,
) -> Vec<havoq_graph::types::VertexId> {
    match select_search_keys_checked(ctx, g, num_keys, seed) {
        Ok(keys) => keys,
        Err(e) => panic!("search-key selection failed: {e}"),
    }
}

/// Fallible core of [`select_search_keys`]: `Err` reports how many usable
/// keys exist when the request cannot be met.
pub fn select_search_keys_checked(
    ctx: &havoq_comm::RankCtx,
    g: &havoq_graph::dist::DistGraph,
    num_keys: usize,
    seed: u64,
) -> Result<Vec<havoq_graph::types::VertexId>, String> {
    use havoq_graph::types::VertexId;
    let n = g.num_vertices();
    // degree probe: the key's master broadcasts whether it has edges
    let has_edges = |key: VertexId| {
        let deg = if g.is_master(key) { g.total_degree(key) } else { 0 };
        ctx.all_reduce_max(deg) > 0
    };
    let mut keys: Vec<VertexId> = Vec::new();
    let mut used = std::collections::HashSet::new();
    // phase 1: pseudo-random probes, 4 tries per requested key
    let mut state = seed;
    let mut tried = 0;
    while keys.len() < num_keys && tried < num_keys * 4 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        tried += 1;
        let key = VertexId(state % n);
        if used.contains(&key.0) || !has_edges(key) {
            continue;
        }
        used.insert(key.0);
        keys.push(key);
    }
    // phase 2: deterministic rescan of the whole vertex range, so a small
    // graph yields every usable key instead of a silently short list
    let mut v = 0u64;
    while keys.len() < num_keys && v < n {
        if !used.contains(&v) && has_edges(VertexId(v)) {
            used.insert(v);
            keys.push(VertexId(v));
        }
        v += 1;
    }
    if keys.len() < num_keys {
        return Err(format!(
            "requested {num_keys} search keys but the graph has only {} distinct \
             vertices with edges (of {n} vertices)",
            keys.len()
        ));
    }
    Ok(keys)
}

/// Fault seeds accept decimal or `0x`-prefixed hex.
fn parse_seed(v: &str) -> Option<u64> {
    match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse().ok(),
    }
}

/// Checkpoint overhead as a percentage of the traversal wall clock.
pub fn overhead_pct(checkpoint_time: Duration, elapsed: Duration) -> f64 {
    if elapsed.is_zero() {
        0.0
    } else {
        100.0 * checkpoint_time.as_secs_f64() / elapsed.as_secs_f64()
    }
}

/// `results/` directory beside the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HAVOQ_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Minimal CSV writer for experiment outputs.
pub struct Csv {
    out: BufWriter<File>,
    path: PathBuf,
}

impl Csv {
    pub fn create(name: &str, header: &[&str]) -> Self {
        let path = results_dir().join(name);
        let mut out = BufWriter::new(File::create(&path).expect("create csv"));
        writeln!(out, "{}", header.join(",")).expect("write header");
        Self { out, path }
    }

    pub fn row(&mut self, fields: &[String]) {
        writeln!(self.out, "{}", fields.join(",")).expect("write row");
    }

    pub fn finish(mut self) {
        self.out.flush().expect("flush csv");
        eprintln!("[csv] wrote {}", self.path.display());
    }
}

/// One experiment artifact: the console banner + table and the CSV under
/// `results/`, driven together so every binary emits both the same way.
///
/// The banner lines print verbatim, then a blank line, then the table
/// header; rows go to both sinks; `finish` closes the CSV and prints the
/// paper-shape commentary that states which trend the run should show.
pub struct Experiment {
    csv: Csv,
}

impl Experiment {
    pub fn begin(
        banner: &[&str],
        csv_name: &str,
        console_cols: &[&str],
        csv_cols: &[&str],
    ) -> Self {
        for line in banner {
            println!("{line}");
        }
        println!();
        print_header(console_cols);
        Experiment { csv: Csv::create(csv_name, csv_cols) }
    }

    /// Emit one row to both the console table and the CSV.
    pub fn row(&mut self, fields: &[String]) {
        print_row(fields);
        self.csv.row(fields);
    }

    /// Emit a row whose console formatting differs from the CSV record
    /// (e.g. human-rounded times next to raw floats).
    pub fn row2(&mut self, console: &[String], csv: &[String]) {
        print_row(console);
        self.csv.row(csv);
    }

    pub fn finish(self, notes: &[&str]) {
        self.csv.finish();
        println!();
        for line in notes {
            println!("{line}");
        }
    }
}

/// Convenience macro building a row of stringified fields (an array, so it
/// coerces to `&[String]` without allocation noise).
#[macro_export]
macro_rules! csv_row {
    ($($v:expr),* $(,)?) => {
        [$(format!("{}", $v)),*]
    };
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Print a right-aligned table row of width-12 columns.
pub fn print_row(cols: &[String]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Print a header row followed by a rule.
pub fn print_header(cols: &[&str]) {
    print_row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Format a Duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Geometric-ish TEPS formatter.
pub fn mteps(edges: u64, d: Duration) -> String {
    if d.is_zero() {
        "inf".to_string()
    } else {
        format!("{:.2}", edges as f64 / d.as_secs_f64() / 1e6)
    }
}

/// Dependency-free microbenchmark harness used by the `benches/` targets
/// (`harness = false`): auto-calibrated batch sizes, a handful of samples,
/// and a min/median/mean table. Honors `HAVOQ_QUICK` for CI smoke runs.
pub mod microbench {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    use super::{print_header, print_row, quick};

    /// A named group of benchmarks sharing one console table.
    pub struct Group {
        samples: usize,
        target_batch: Duration,
    }

    /// Open a group: prints the banner and the result table header.
    pub fn group(name: &str) -> Group {
        let (samples, target_batch) =
            if quick() { (3, Duration::from_millis(2)) } else { (10, Duration::from_millis(20)) };
        println!("microbench group: {name}  ({samples} samples)\n");
        print_header(&["benchmark", "iters", "min", "median", "mean"]);
        Group { samples, target_batch }
    }

    fn fmt_ns(ns: f64) -> String {
        if ns >= 1e9 {
            format!("{:.3} s", ns / 1e9)
        } else if ns >= 1e6 {
            format!("{:.3} ms", ns / 1e6)
        } else if ns >= 1e3 {
            format!("{:.3} us", ns / 1e3)
        } else {
            format!("{ns:.0} ns")
        }
    }

    impl Group {
        /// Time one closure: calibrate a batch size so a batch is long
        /// enough to measure, then report per-iteration latency over
        /// `samples` batches.
        pub fn bench<R>(&mut self, name: &str, mut f: impl FnMut() -> R) {
            // Warm-up + calibration: grow the batch until it fills the
            // target window (capped so slow world-spawning benches still
            // finish promptly).
            let mut iters: u64 = 1;
            loop {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                let elapsed = t0.elapsed();
                if elapsed >= self.target_batch || iters >= 1 << 20 {
                    break;
                }
                let scale = (self.target_batch.as_secs_f64() / elapsed.as_secs_f64().max(1e-9))
                    .ceil() as u64;
                iters = (iters * scale.clamp(2, 100)).min(1 << 20);
            }
            let mut per_iter_ns: Vec<f64> = (0..self.samples)
                .map(|_| {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(f());
                    }
                    t0.elapsed().as_secs_f64() * 1e9 / iters as f64
                })
                .collect();
            per_iter_ns.sort_by(|a, b| a.total_cmp(b));
            let min = per_iter_ns[0];
            let median = per_iter_ns[per_iter_ns.len() / 2];
            let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
            print_row(&[
                name.to_string(),
                iters.to_string(),
                fmt_ns(min),
                fmt_ns(median),
                fmt_ns(mean),
            ]);
        }

        pub fn finish(self) {
            println!();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // These tests toggle process-global environment variables; serialize
    // them so the parallel test runner can't interleave the mutations.
    static ENV_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn pick_follows_quick_flag() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var("HAVOQ_QUICK");
        assert_eq!(pick(1, 2), 2);
        std::env::set_var("HAVOQ_QUICK", "1");
        assert_eq!(pick(1, 2), 1);
        std::env::remove_var("HAVOQ_QUICK");
    }

    #[test]
    fn experiment_writes_both_sinks() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("HAVOQ_RESULTS", std::env::temp_dir().join("havoq-exp-test"));
        let mut exp = Experiment::begin(&["banner"], "exp.csv", &["a", "b"], &["a", "b"]);
        exp.row(&csv_row![1, 2]);
        exp.row2(&csv_row!["1.0 ms", "x"], &csv_row![1.5, "x"]);
        exp.finish(&["note"]);
        let text = std::fs::read_to_string(results_dir().join("exp.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n1.5,x\n");
        std::env::remove_var("HAVOQ_RESULTS");
    }

    #[test]
    fn faults_parses_seed_from_env() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var("HAVOQ_FAULTS");
        assert_eq!(faults(), None);
        std::env::set_var("HAVOQ_FAULTS", "42");
        assert_eq!(faults(), Some(42));
        std::env::set_var("HAVOQ_FAULTS", "0xBEEF");
        assert_eq!(faults(), Some(0xBEEF));
        std::env::set_var("HAVOQ_FAULTS", "not-a-seed");
        assert_eq!(faults(), None);
        std::env::remove_var("HAVOQ_FAULTS");
    }

    #[test]
    fn csv_roundtrip() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::set_var("HAVOQ_RESULTS", std::env::temp_dir().join("havoq-csv-test"));
        let mut c = Csv::create("t.csv", &["a", "b"]);
        c.row(&csv_row![1, "x"]);
        c.finish();
        let text = std::fs::read_to_string(results_dir().join("t.csv")).unwrap();
        assert_eq!(text, "a,b\n1,x\n");
        std::env::remove_var("HAVOQ_RESULTS");
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(mteps(2_000_000, Duration::from_secs(1)), "2.00");
        assert_eq!(mteps(1, Duration::ZERO), "inf");
    }

    #[test]
    fn batch_parses_from_env() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var("HAVOQ_BATCH");
        assert_eq!(batch(), None);
        std::env::set_var("HAVOQ_BATCH", "32");
        assert_eq!(batch(), Some(32));
        std::env::set_var("HAVOQ_BATCH", "junk");
        assert_eq!(batch(), None);
        std::env::remove_var("HAVOQ_BATCH");
    }

    #[test]
    fn direction_parses_from_env() {
        use havoq_core::direction::DirectionMode;
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var("HAVOQ_DIRECTION");
        assert_eq!(direction(), None);
        std::env::set_var("HAVOQ_DIRECTION", "auto");
        assert_eq!(direction(), Some(DirectionMode::Auto));
        std::env::set_var("HAVOQ_DIRECTION", "top");
        assert_eq!(direction(), Some(DirectionMode::TopDown));
        std::env::set_var("HAVOQ_DIRECTION", "bottom-up");
        assert_eq!(direction(), Some(DirectionMode::BottomUp));
        std::env::set_var("HAVOQ_DIRECTION", "async");
        assert_eq!(direction(), Some(DirectionMode::Async));
        std::env::remove_var("HAVOQ_DIRECTION");
    }

    #[test]
    fn storage_parses_from_env() {
        let _g = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        std::env::remove_var("HAVOQ_STORAGE");
        assert_eq!(storage(), None);
        std::env::set_var("HAVOQ_STORAGE", "mem");
        assert_eq!(storage(), Some(StorageMode::Mem));
        std::env::set_var("HAVOQ_STORAGE", "ext");
        assert_eq!(storage(), Some(StorageMode::Ext));
        std::env::set_var("HAVOQ_STORAGE", "ext-compressed");
        assert_eq!(storage(), Some(StorageMode::ExtCompressed));
        std::env::set_var("HAVOQ_STORAGE", "ext-comp");
        assert_eq!(storage(), Some(StorageMode::ExtCompressed));
        std::env::remove_var("HAVOQ_STORAGE");
        assert!(StorageMode::parse("junk").is_none());
    }

    /// Bench hygiene regression: key selection probes degrees through the
    /// DRAM degree table, so on compressed storage it must decode *zero*
    /// adjacency slices — decoding the full adjacency of every probed
    /// vertex would drag cold edge bytes through the cache before the
    /// timed run starts.
    #[test]
    fn search_key_selection_decodes_no_slices_on_compressed_storage() {
        use havoq_graph::csr::GraphConfig;
        use havoq_graph::dist::{DistGraph, PartitionStrategy};
        use havoq_graph::gen::rmat::RmatGenerator;
        use havoq_nvram::{DeviceProfile, PageCacheConfig};

        let gen = RmatGenerator::graph500(6);
        let edges = gen.symmetric_edges(99);
        let counts = havoq_comm::CommWorld::run(2, move |ctx| {
            let cache = PageCacheConfig {
                page_size: 256,
                capacity_pages: 8,
                shards: 1,
                ..PageCacheConfig::default()
            };
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::external_compressed(DeviceProfile::dram(), cache),
            );
            let keys = select_search_keys(ctx, &g, 8, SEARCH_KEY_SEED);
            assert_eq!(keys.len(), 8);
            g.csr().storage_snapshot().unwrap().adj_decodes
        });
        for decodes in counts {
            assert_eq!(decodes, 0, "key selection must not decode adjacency slices");
        }
    }

    /// The key-selection regression: a graph with only two non-isolated
    /// vertices must yield exactly those two when two keys are requested
    /// (the deterministic rescan fills what the random probes miss), and
    /// must fail *loudly* — not return a silently short list — when three
    /// are requested.
    #[test]
    fn search_key_selection_rescans_and_fails_loudly() {
        use havoq_graph::csr::GraphConfig;
        use havoq_graph::dist::{DistGraph, PartitionStrategy};
        use havoq_graph::types::Edge;

        // vertices 0 and 1 are connected; 2 and 3 are isolated
        let edges = vec![Edge::new(0, 1), Edge::new(1, 0)];
        let out = havoq_comm::CommWorld::run(2, move |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(4),
            );
            let ok = select_search_keys_checked(ctx, &g, 2, SEARCH_KEY_SEED);
            let err = select_search_keys_checked(ctx, &g, 3, SEARCH_KEY_SEED);
            (ok, err)
        });
        for (ok, err) in out {
            let mut keys: Vec<u64> = ok.expect("2 usable keys exist").iter().map(|k| k.0).collect();
            keys.sort_unstable();
            assert_eq!(keys, vec![0, 1], "rescan must find exactly the non-isolated vertices");
            let msg = err.expect_err("3 keys cannot exist on a 2-usable-vertex graph");
            assert!(msg.contains("only 2"), "error must report the usable count: {msg}");
        }
    }

    /// Key selection is collective and deterministic: every rank computes
    /// the identical key list, keys are distinct, and all have edges.
    #[test]
    fn search_key_selection_is_deterministic_across_ranks() {
        use havoq_graph::csr::GraphConfig;
        use havoq_graph::dist::{DistGraph, PartitionStrategy};
        use havoq_graph::gen::rmat::RmatGenerator;

        let gen = RmatGenerator::graph500(4);
        let edges = gen.symmetric_edges(42);
        let n = gen.num_vertices();
        let out = havoq_comm::CommWorld::run(3, move |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default().with_num_vertices(n),
            );
            select_search_keys(ctx, &g, 8, SEARCH_KEY_SEED)
        });
        assert_eq!(out[0].len(), 8);
        for rank in &out {
            assert_eq!(rank, &out[0], "ranks disagree on the key set");
        }
        let mut uniq: Vec<u64> = out[0].iter().map(|k| k.0).collect();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), 8, "selected keys must be distinct");
    }
}
