//! Shared harness for the experiment binaries that regenerate the paper's
//! tables and figures.
//!
//! Each binary under `src/bin/` reproduces one evaluation artifact (see
//! DESIGN.md's per-experiment index), prints the paper's rows/series to
//! stdout, and writes a CSV under `results/`. Set `HAVOQ_QUICK=1` to run
//! reduced parameter sweeps (used by integration tests); set
//! `HAVOQ_SCALE_BUMP=n` to grow workloads on bigger machines.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// True when reduced sweeps are requested.
pub fn quick() -> bool {
    std::env::var("HAVOQ_QUICK").map(|v| v != "0").unwrap_or(false)
}

/// Additional scale applied to workloads (log2 steps).
pub fn scale_bump() -> u32 {
    std::env::var("HAVOQ_SCALE_BUMP").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// `results/` directory beside the workspace root (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HAVOQ_RESULTS")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Minimal CSV writer for experiment outputs.
pub struct Csv {
    out: BufWriter<File>,
    path: PathBuf,
}

impl Csv {
    pub fn create(name: &str, header: &[&str]) -> Self {
        let path = results_dir().join(name);
        let mut out = BufWriter::new(File::create(&path).expect("create csv"));
        writeln!(out, "{}", header.join(",")).expect("write header");
        Self { out, path }
    }

    pub fn row(&mut self, fields: &[String]) {
        writeln!(self.out, "{}", fields.join(",")).expect("write row");
    }

    pub fn finish(mut self) {
        self.out.flush().expect("flush csv");
        eprintln!("[csv] wrote {}", self.path.display());
    }
}

/// Convenience macro building a row of stringified fields (an array, so it
/// coerces to `&[String]` without allocation noise).
#[macro_export]
macro_rules! csv_row {
    ($($v:expr),* $(,)?) => {
        [$(format!("{}", $v)),*]
    };
}

/// Time a closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed())
}

/// Print a right-aligned table row of width-12 columns.
pub fn print_row(cols: &[String]) {
    let line: Vec<String> = cols.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Print a header row followed by a rule.
pub fn print_header(cols: &[&str]) {
    print_row(&cols.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    println!("{}", "-".repeat(15 * cols.len()));
}

/// Format a Duration as fractional milliseconds.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Geometric-ish TEPS formatter.
pub fn mteps(edges: u64, d: Duration) -> String {
    if d.is_zero() {
        "inf".to_string()
    } else {
        format!("{:.2}", edges as f64 / d.as_secs_f64() / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        std::env::set_var("HAVOQ_RESULTS", std::env::temp_dir().join("havoq-csv-test"));
        let mut c = Csv::create("t.csv", &["a", "b"]);
        c.row(&csv_row![1, "x"]);
        c.finish();
        let text = std::fs::read_to_string(results_dir().join("t.csv")).unwrap();
        assert_eq!(text, "a,b\n1,x\n");
        std::env::remove_var("HAVOQ_RESULTS");
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(mteps(2_000_000, Duration::from_secs(1)), "2.00");
        assert_eq!(mteps(1, Duration::ZERO), "inf");
    }
}
