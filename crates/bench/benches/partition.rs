//! Criterion benchmarks for graph construction: the distributed sample
//! sort + edge-list partitioning pipeline vs the 1D bucket exchange, and
//! the raw generators.

use criterion::{criterion_group, criterion_main, Criterion};
use havoq_comm::CommWorld;
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::gen::smallworld::SmallWorldGenerator;
use havoq_graph::sort::sort_edges_even;

const RANKS: usize = 4;
const SCALE: u32 = 11;

fn bench_partition(c: &mut Criterion) {
    let gen = RmatGenerator::graph500(SCALE);
    let mut group = c.benchmark_group("construction");
    group.sample_size(10);

    group.bench_function("rmat_generate_s11", |b| {
        b.iter(|| gen.edges(42).len());
    });

    group.bench_function("smallworld_generate_64k_edges", |b| {
        let sw = SmallWorldGenerator::new(1 << 12, 32).with_rewire(0.1);
        b.iter(|| sw.edges(42).len());
    });

    group.bench_function("distributed_sample_sort", |b| {
        b.iter(|| {
            CommWorld::run(RANKS, |ctx| {
                let local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                sort_edges_even(ctx, local).len()
            })
        })
    });

    group.bench_function("build_edge_list_partition", |b| {
        b.iter(|| {
            CommWorld::run(RANKS, |ctx| {
                let local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default())
                    .num_edges()
            })
        })
    });

    group.bench_function("build_one_d_partition", |b| {
        b.iter(|| {
            CommWorld::run(RANKS, |ctx| {
                let local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
                DistGraph::build(ctx, local, PartitionStrategy::OneD, GraphConfig::default())
                    .num_edges()
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
