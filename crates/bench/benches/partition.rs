//! Microbenchmarks for graph construction: the distributed sample sort +
//! edge-list partitioning pipeline vs the 1D bucket exchange, and the raw
//! generators.

use havoq_comm::CommWorld;
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::gen::smallworld::SmallWorldGenerator;
use havoq_graph::sort::sort_edges_even;

const RANKS: usize = 4;

fn main() {
    let scale: u32 = havoq_bench::pick(9, 11);
    let gen = RmatGenerator::graph500(scale);
    let mut g = havoq_bench::microbench::group(&format!("construction (RMAT s{scale})"));

    g.bench("rmat_generate", || gen.edges(42).len());

    let sw = SmallWorldGenerator::new(1 << 12, 32).with_rewire(0.1);
    g.bench("smallworld_generate_64k_edges", || sw.edges(42).len());

    g.bench("distributed_sample_sort", || {
        CommWorld::run(RANKS, |ctx| {
            let local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            sort_edges_even(ctx, local).len()
        })
    });

    g.bench("build_edge_list_partition", || {
        CommWorld::run(RANKS, |ctx| {
            let local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            DistGraph::build(ctx, local, PartitionStrategy::EdgeList, GraphConfig::default())
                .num_edges()
        })
    });

    g.bench("build_one_d_partition", || {
        CommWorld::run(RANKS, |ctx| {
            let local = gen.edges_for_rank(42, ctx.rank(), ctx.size());
            DistGraph::build(ctx, local, PartitionStrategy::OneD, GraphConfig::default())
                .num_edges()
        })
    });

    g.finish();
}
