//! Microbenchmarks for the three paper kernels on a fixed RMAT world: the
//! end-to-end cost of one asynchronous traversal per algorithm, plus a
//! BFS ghost on/off ablation (Figure 13 in microbenchmark form).

use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;

const RANKS: usize = 4;

fn main() {
    let scale: u32 = havoq_bench::pick(8, 10);
    let edges = RmatGenerator::graph500(scale).symmetric_edges(42);
    let mut g = havoq_bench::microbench::group(&format!("traversal_rmat_s{scale}_p{RANKS}"));

    g.bench("bfs_ghosts256", || {
        CommWorld::run(RANKS, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            bfs(ctx, &g, VertexId(0), &BfsConfig::default()).visited_count
        })
    });

    g.bench("bfs_no_ghosts", || {
        CommWorld::run(RANKS, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            bfs(ctx, &g, VertexId(0), &BfsConfig::default().with_ghosts(0)).visited_count
        })
    });

    g.bench("kcore_k4", || {
        CommWorld::run(RANKS, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            kcore(ctx, &g, 4, &KCoreConfig::default()).alive_count
        })
    });

    g.bench("triangle_count", || {
        CommWorld::run(RANKS, |ctx| {
            let g = DistGraph::build_replicated(
                ctx,
                &edges,
                PartitionStrategy::EdgeList,
                GraphConfig::default(),
            );
            triangle_count(ctx, &g, &TriangleConfig::default()).triangles
        })
    });

    g.finish();
}
