//! Criterion benchmarks for the three paper kernels on a fixed RMAT world:
//! the end-to-end cost of one asynchronous traversal per algorithm, plus a
//! BFS ghost on/off ablation (Figure 13 in microbenchmark form).

use criterion::{criterion_group, criterion_main, Criterion};
use havoq_comm::CommWorld;
use havoq_core::algorithms::bfs::{bfs, BfsConfig};
use havoq_core::algorithms::kcore::{kcore, KCoreConfig};
use havoq_core::algorithms::triangle::{triangle_count, TriangleConfig};
use havoq_graph::csr::GraphConfig;
use havoq_graph::dist::{DistGraph, PartitionStrategy};
use havoq_graph::gen::rmat::RmatGenerator;
use havoq_graph::types::VertexId;

const RANKS: usize = 4;
const SCALE: u32 = 10;

fn bench_traversal(c: &mut Criterion) {
    let edges = RmatGenerator::graph500(SCALE).symmetric_edges(42);
    let mut group = c.benchmark_group("traversal_rmat_s10_p4");
    group.sample_size(10);

    group.bench_function("bfs_ghosts256", |b| {
        b.iter(|| {
            CommWorld::run(RANKS, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                bfs(ctx, &g, VertexId(0), &BfsConfig::default()).visited_count
            })
        })
    });

    group.bench_function("bfs_no_ghosts", |b| {
        b.iter(|| {
            CommWorld::run(RANKS, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                bfs(ctx, &g, VertexId(0), &BfsConfig::default().with_ghosts(0)).visited_count
            })
        })
    });

    group.bench_function("kcore_k4", |b| {
        b.iter(|| {
            CommWorld::run(RANKS, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                kcore(ctx, &g, 4, &KCoreConfig::default()).alive_count
            })
        })
    });

    group.bench_function("triangle_count", |b| {
        b.iter(|| {
            CommWorld::run(RANKS, |ctx| {
                let g = DistGraph::build_replicated(
                    ctx,
                    &edges,
                    PartitionStrategy::EdgeList,
                    GraphConfig::default(),
                );
                triangle_count(ctx, &g, &TriangleConfig::default()).triangles
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_traversal);
criterion_main!(benches);
