//! Microbenchmarks for the routed/aggregating mailbox: all-to-all payload
//! delivery under the three topologies (the Section III-B trade-off:
//! fewer channels + more aggregation vs extra hops).

use havoq_comm::{CommWorld, Mailbox, MailboxConfig, Quiescence, TopologyKind};

fn all_to_all(p: usize, topo: TopologyKind, msgs_each: usize) -> u64 {
    let out = CommWorld::run(p, |ctx| {
        let mut mb = Mailbox::<u64>::open(
            ctx,
            1,
            MailboxConfig { topology: topo, batch_size: 64, ..MailboxConfig::default() },
        );
        let mut q = Quiescence::new(ctx, 1);
        for dst in 0..p {
            for i in 0..msgs_each {
                mb.send(dst, i as u64);
            }
        }
        let mut got = Vec::new();
        loop {
            if mb.poll(&mut got) == 0 {
                mb.flush();
                if q.poll(mb.sent_count(), mb.received_count(), mb.pending_out() == 0) {
                    break;
                }
            }
        }
        mb.received_count()
    });
    out.iter().sum()
}

fn main() {
    let p = 16;
    let msgs = havoq_bench::pick(200, 2_000);
    let mut g = havoq_bench::microbench::group("mailbox_all_to_all");
    for (name, topo) in [
        ("direct", TopologyKind::Direct),
        ("routed2d", TopologyKind::Routed2D),
        ("routed3d", TopologyKind::Routed3D),
    ] {
        g.bench(name, || all_to_all(p, topo, msgs));
    }
    g.finish();
}
