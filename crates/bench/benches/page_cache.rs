//! Microbenchmarks for the user-space page cache: hit path, miss path
//! (with and without simulated NVRAM latency), and sequential vs random
//! scans — the access patterns the Section V-A locality ordering is
//! designed to shape.

use std::sync::Arc;

use havoq_nvram::cache::{EvictionPolicy, PageCache, PageCacheConfig};
use havoq_nvram::device::{BlockDevice, DeviceProfile, MemDevice, SimNvram};

fn make_cache(pages: usize, profile: Option<DeviceProfile>) -> PageCache {
    let dev: Arc<dyn BlockDevice> = match profile {
        None => Arc::new(MemDevice::with_capacity(16 << 20)),
        Some(p) => Arc::new(SimNvram::new(MemDevice::with_capacity(16 << 20), p)),
    };
    PageCache::new(
        dev,
        PageCacheConfig {
            page_size: 4096,
            capacity_pages: pages,
            shards: 8,
            ..PageCacheConfig::default()
        },
    )
}

fn main() {
    let mut g = havoq_bench::microbench::group("page_cache");

    {
        let cache = make_cache(256, None);
        cache.write_at(0, &[1u8; 4096]);
        let mut buf = [0u8; 8];
        g.bench("hit_8B", || cache.read_at(512, &mut buf));
    }

    {
        let cache = make_cache(64, None);
        let mut buf = [0u8; 4096];
        g.bench("sequential_scan_1MiB", || {
            for page in 0..256u64 {
                cache.read_at(page * 4096, &mut buf);
            }
        });
    }

    {
        let cache = make_cache(16, None);
        let mut buf = [0u8; 64];
        let mut x = 0x12345u64;
        g.bench("random_scan_miss_heavy", || {
            for _ in 0..64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let page = (x >> 33) % 2048;
                cache.read_at(page * 4096, &mut buf);
            }
        });
    }

    {
        let cache = make_cache(8, Some(DeviceProfile::fusion_io()));
        let mut buf = [0u8; 64];
        let mut page = 0u64;
        g.bench("miss_with_fusionio_latency", || {
            page = (page + 97) % 4096; // defeat the tiny cache
            cache.read_at(page * 4096, &mut buf);
        });
    }

    // victim search at a large capacity: every access below misses, so each
    // iteration pays one pick_victim. The stamp-ordered index keeps LRU/FIFO
    // selection O(log n) instead of an O(capacity) scan; CLOCK stays a hand
    // sweep for comparison.
    for (name, policy) in [
        ("victim_search_clock_4k_frames", EvictionPolicy::Clock),
        ("victim_search_lru_4k_frames", EvictionPolicy::Lru),
        ("victim_search_fifo_4k_frames", EvictionPolicy::Fifo),
    ] {
        let dev: Arc<dyn BlockDevice> = Arc::new(MemDevice::with_capacity(256 << 20));
        let cache = PageCache::new(
            dev,
            PageCacheConfig {
                page_size: 4096,
                capacity_pages: 4096,
                shards: 1, // one shard = the full capacity in one victim pool
                policy,
                ..PageCacheConfig::default()
            },
        );
        // warm to full occupancy so every further miss evicts
        let mut buf = [0u8; 64];
        for page in 0..4096u64 {
            cache.read_at(page * 4096, &mut buf);
        }
        let mut page = 4096u64;
        g.bench(name, || {
            for _ in 0..16 {
                cache.read_at(page * 4096, &mut buf);
                page += 1;
            }
        });
    }

    g.finish();
}
