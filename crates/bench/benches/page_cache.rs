//! Criterion microbenchmarks for the user-space page cache: hit path, miss
//! path (with and without simulated NVRAM latency), and sequential vs
//! random scans — the access patterns the Section V-A locality ordering is
//! designed to shape.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use havoq_nvram::cache::{PageCache, PageCacheConfig};
use havoq_nvram::device::{BlockDevice, DeviceProfile, MemDevice, SimNvram};

fn make_cache(pages: usize, profile: Option<DeviceProfile>) -> PageCache {
    let dev: Arc<dyn BlockDevice> = match profile {
        None => Arc::new(MemDevice::with_capacity(16 << 20)),
        Some(p) => Arc::new(SimNvram::new(MemDevice::with_capacity(16 << 20), p)),
    };
    PageCache::new(dev, PageCacheConfig { page_size: 4096, capacity_pages: pages, shards: 8, ..PageCacheConfig::default() })
}

fn bench_page_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_cache");

    group.bench_function("hit_8B", |b| {
        let cache = make_cache(256, None);
        cache.write_at(0, &[1u8; 4096]);
        let mut buf = [0u8; 8];
        b.iter(|| cache.read_at(512, &mut buf));
    });

    group.bench_function("sequential_scan_1MiB", |b| {
        let cache = make_cache(64, None);
        let mut buf = [0u8; 4096];
        b.iter(|| {
            for page in 0..256u64 {
                cache.read_at(page * 4096, &mut buf);
            }
        });
    });

    group.bench_function("random_scan_miss_heavy", |b| {
        let cache = make_cache(16, None);
        let mut buf = [0u8; 64];
        let mut x = 0x12345u64;
        b.iter(|| {
            for _ in 0..64 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                let page = (x >> 33) % 2048;
                cache.read_at(page * 4096, &mut buf);
            }
        });
    });

    group.bench_function("miss_with_fusionio_latency", |b| {
        let cache = make_cache(8, Some(DeviceProfile::fusion_io()));
        let mut buf = [0u8; 64];
        let mut page = 0u64;
        b.iter(|| {
            page = (page + 97) % 4096; // defeat the tiny cache
            cache.read_at(page * 4096, &mut buf);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_page_cache);
criterion_main!(benches);
